// Tests for exact all-vertex eccentricities and the radius / center /
// periphery metrics built on them.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/eccentricity.hpp"
#include "core/fdiam.hpp"
#include "core/metrics.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

TEST(ExactEccentricities, MatchesApspOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Csr g = make_erdos_renyi(250, 700, seed);
    const auto truth = all_eccentricities(g);
    const ExactEccResult r = exact_eccentricities(g);
    EXPECT_EQ(r.ecc, truth) << "seed " << seed;
    EXPECT_LE(r.bfs_calls, g.num_vertices());
  }
}

TEST(ExactEccentricities, FewerTraversalsThanVerticesOnSmallWorld) {
  // Random BA graphs are the bounding algorithm's hard case (the
  // eccentricity distribution spans only 3-4 distinct values, so many
  // vertices stay within lb+1 == ub until individually evaluated); even
  // there it beats one-BFS-per-vertex.
  const Csr g = make_barabasi_albert(5000, 4.0, 3);
  const ExactEccResult r = exact_eccentricities(g);
  EXPECT_LT(r.bfs_calls, g.num_vertices() / 2);
  EXPECT_EQ(r.ecc, all_eccentricities(g));
}

TEST(ExactEccentricities, SettlesHighDiameterGraphsInFewTraversals) {
  // Wide eccentricity spread (the favorable, real-world case): a long
  // path settles after a handful of traversals.
  const Csr g = make_path(3000);
  const ExactEccResult r = exact_eccentricities(g);
  EXPECT_LE(r.bfs_calls, 10u);
  EXPECT_EQ(r.ecc, all_eccentricities(g));
}

TEST(ExactEccentricities, HandlesDisconnectedGraphs) {
  const Csr g = disjoint_union(make_path(15), make_star(6));
  const ExactEccResult r = exact_eccentricities(g);
  EXPECT_EQ(r.ecc, all_eccentricities(g));
}

TEST(ExactEccentricities, IsolatedVerticesAreFree) {
  EdgeList e(20);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  const ExactEccResult r = exact_eccentricities(g);
  for (vid_t v = 2; v < 20; ++v) EXPECT_EQ(r.ecc[v], 0);
  EXPECT_LE(r.bfs_calls, 2u);
}

TEST(ExactEccentricities, EmptyGraph) {
  const ExactEccResult r = exact_eccentricities(Csr::from_edges(EdgeList{}));
  EXPECT_TRUE(r.ecc.empty());
  EXPECT_EQ(r.bfs_calls, 0u);
}

TEST(GraphMetrics, PathCenterAndPeriphery) {
  const Csr g = make_path(21);
  const GraphMetrics m = graph_metrics(g);
  EXPECT_EQ(m.diameter, 20);
  EXPECT_EQ(m.radius, 10);
  ASSERT_EQ(m.center.size(), 1u);
  EXPECT_EQ(m.center[0], 10u);
  ASSERT_EQ(m.periphery.size(), 2u);
  EXPECT_EQ(m.periphery[0], 0u);
  EXPECT_EQ(m.periphery[1], 20u);
}

TEST(GraphMetrics, EvenPathHasTwoCenters) {
  const Csr g = make_path(10);
  const GraphMetrics m = graph_metrics(g);
  EXPECT_EQ(m.radius, 5);
  EXPECT_EQ(m.center.size(), 2u);
}

TEST(GraphMetrics, CycleIsAllCenterAllPeriphery) {
  const Csr g = make_cycle(12);
  const GraphMetrics m = graph_metrics(g);
  EXPECT_EQ(m.diameter, 6);
  EXPECT_EQ(m.radius, 6);
  EXPECT_EQ(m.center.size(), 12u);
  EXPECT_EQ(m.periphery.size(), 12u);
}

TEST(GraphMetrics, StarCenterIsTheHub) {
  const GraphMetrics m = graph_metrics(make_star(9));
  EXPECT_EQ(m.radius, 1);
  ASSERT_EQ(m.center.size(), 1u);
  EXPECT_EQ(m.center[0], 0u);
  EXPECT_EQ(m.periphery.size(), 9u);
}

TEST(GraphMetrics, RadiusSatisfiesTheorem3) {
  // Paper Theorem 3: radius >= diameter / 2.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_barabasi_albert(300, 2.0, seed);
    const GraphMetrics m = graph_metrics(g);
    EXPECT_GE(2 * m.radius, m.diameter) << "seed " << seed;
    EXPECT_GE(m.periphery.size(), 2u);  // Theorem 2
  }
}

TEST(GraphMetrics, DiameterAgreesWithFDiam) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const Csr g = make_erdos_renyi(300, 700, seed);
    const GraphMetrics m = graph_metrics(g);
    const DiameterResult f = fdiam_diameter(g);
    EXPECT_EQ(m.diameter, f.diameter) << "seed " << seed;
    EXPECT_EQ(m.connected, f.connected);
  }
}

TEST(GraphMetrics, DisconnectedUsesLargestComponentForRadius) {
  // Largest component: cycle(20) with radius 10; the small path would
  // have radius 1.
  const Csr g = disjoint_union(make_path(3), make_cycle(20));
  const GraphMetrics m = graph_metrics(g);
  EXPECT_FALSE(m.connected);
  EXPECT_EQ(m.diameter, 10);
  EXPECT_EQ(m.radius, 10);
  for (const vid_t c : m.center) EXPECT_GE(c, 3u);  // in the cycle
}

}  // namespace
}  // namespace fdiam
