// Tests for the EdgeList intermediate representation.

#include <gtest/gtest.h>

#include "graph/edge_list.hpp"

namespace fdiam {
namespace {

TEST(EdgeList, GrowsVertexCountFromEdges) {
  EdgeList e;
  e.add(3, 7);
  EXPECT_EQ(e.num_vertices(), 8u);
  e.add(10, 2);
  EXPECT_EQ(e.num_vertices(), 11u);
}

TEST(EdgeList, EnsureVerticesAddsIsolated) {
  EdgeList e;
  e.add(0, 1);
  e.ensure_vertices(5);
  EXPECT_EQ(e.num_vertices(), 5u);
  e.ensure_vertices(2);  // shrinking is a no-op
  EXPECT_EQ(e.num_vertices(), 5u);
}

TEST(EdgeList, CanonicalizeRemovesDuplicates) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 0);  // same undirected edge, reversed
  e.add(0, 1);  // exact duplicate
  e.add(1, 2);
  e.canonicalize();
  EXPECT_EQ(e.size(), 2u);
}

TEST(EdgeList, CanonicalizeRemovesSelfLoops) {
  EdgeList e;
  e.add(0, 0);
  e.add(1, 1);
  e.add(0, 1);
  e.canonicalize();
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e.edges()[0], (Edge{0, 1}));
}

TEST(EdgeList, CanonicalizeSortsEdges) {
  EdgeList e;
  e.add(5, 2);
  e.add(1, 0);
  e.add(3, 1);
  e.canonicalize();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(e.edges()[1], (Edge{1, 3}));
  EXPECT_EQ(e.edges()[2], (Edge{2, 5}));
}

TEST(EdgeList, EmptyCanonicalizeIsSafe) {
  EdgeList e;
  e.canonicalize();
  EXPECT_EQ(e.size(), 0u);
  EXPECT_EQ(e.num_vertices(), 0u);
}

}  // namespace
}  // namespace fdiam
