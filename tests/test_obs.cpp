// Tests for the observability subsystem: the JSON writer/validator, the
// run-report schema, the per-level BFS profile, the metric registry, and
// the bench harness's JSON report.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "bfs/bfs.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/stats.hpp"
#include "harness.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace fdiam {
namespace {

using obs::json_lookup;
using obs::json_number;
using obs::json_string;
using obs::json_valid;
using obs::JsonWriter;

// --- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, NestedDocumentIsValid) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("name", std::string_view("fdiam"));
  w.field("count", std::uint64_t{42});
  w.field("ratio", 0.5);
  w.field("ok", true);
  w.key("nothing").null();
  w.key("list").begin_array();
  w.value(std::int64_t{1}).value(std::int64_t{2}).value(std::int64_t{3});
  w.end_array();
  w.key("nested").begin_object();
  w.field("deep", std::string_view("value"));
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.depth(), 0);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  EXPECT_EQ(json_number(os.str(), "count"), 42.0);
  EXPECT_EQ(json_string(os.str(), "nested.deep"), "value");
  EXPECT_EQ(json_lookup(os.str(), "list.2"), "3");
}

TEST(JsonWriter, CompactModeAndEmptyContainers) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();
  EXPECT_EQ(os.str(), "{\"empty_obj\":{},\"empty_arr\":[]}");
  EXPECT_TRUE(json_valid(os.str()));
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.field("k", std::string_view("a\"b\\c\nd\te\x01f"));
  w.end_object();
  EXPECT_TRUE(json_valid(os.str())) << os.str();
  // Round-trip through the unescaper restores the original bytes.
  EXPECT_EQ(json_string(os.str(), "k"), "a\"b\\c\nd\te\x01f");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

// --- Validator ------------------------------------------------------------

TEST(JsonValidator, AcceptsWellFormedDocuments) {
  for (const char* text :
       {"{}", "[]", "null", "true", "42", "-1.5e9", "\"str\"",
        R"({"a": [1, 2, {"b": null}], "c": "\u00e9\n"})", "  [1]  "}) {
    EXPECT_TRUE(json_valid(text)) << text;
  }
}

TEST(JsonValidator, RejectsMalformedDocuments) {
  for (const char* text :
       {"", "{", "}", "[1,]", "{\"a\":}", "{a: 1}", "{\"a\" 1}", "01",
        "+1", "1.", "\"unterminated", "\"bad\\q\"", "[1] trailing",
        "nulll", "{\"a\":1,}", "\"\\u12g4\""}) {
    EXPECT_FALSE(json_valid(text)) << text;
  }
}

TEST(JsonDiagnose, ValidDocumentsReturnNoDiagnostic) {
  for (const char* text : {"{}", "[1, 2]", "null", R"({"a": "b"})"}) {
    EXPECT_FALSE(obs::json_diagnose(text).has_value()) << text;
  }
}

TEST(JsonDiagnose, PinpointsTheOffendingByte) {
  // The diagnostic exists to catch writer bugs like a raw NaN token: it
  // must carry the byte offset and quote the offending input.
  const auto nan_diag = obs::json_diagnose(R"({"x": nan})");
  ASSERT_TRUE(nan_diag.has_value());
  EXPECT_NE(nan_diag->find("byte 6"), std::string::npos) << *nan_diag;
  EXPECT_NE(nan_diag->find("nan"), std::string::npos) << *nan_diag;

  const auto empty_diag = obs::json_diagnose("");
  ASSERT_TRUE(empty_diag.has_value());
  EXPECT_NE(empty_diag->find("empty"), std::string::npos) << *empty_diag;

  const auto trailing = obs::json_diagnose("{} extra");
  ASSERT_TRUE(trailing.has_value());
  EXPECT_NE(trailing->find("trailing"), std::string::npos) << *trailing;

  // Agreement with json_valid: a diagnostic iff invalid.
  for (const char* text :
       {"", "{", "[1,]", "{\"a\":}", "nulll", "[Infinity]", "1.", "{}",
        "[null]", "-2.5e3"}) {
    EXPECT_EQ(obs::json_diagnose(text).has_value(), !json_valid(text))
        << text;
  }
}

TEST(JsonWriter, DoubleFormattingRoundTripsAndStaysLocaleFree) {
  // to_chars emits shortest-round-trip doubles with '.' regardless of
  // locale; the values must parse back to exactly the same bits.
  for (const double v : {0.1, 1e-300, 1.7976931348623157e308, 3.25,
                         -0.0078125, 12345.6789}) {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_array();
    w.value(v);
    w.end_array();
    ASSERT_TRUE(json_valid(os.str())) << os.str();
    EXPECT_EQ(os.str().find(','), std::string::npos) << os.str();
    EXPECT_EQ(json_number(os.str(), "0"), v) << os.str();
  }
}

TEST(JsonValidator, DepthCapStopsDeepRecursion) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(json_valid(deep));  // structurally fine but over the cap
}

TEST(JsonLookup, MissingPathsReturnNullopt) {
  const std::string doc = R"({"a": {"b": [10, 20]}})";
  EXPECT_EQ(json_lookup(doc, "a.b.1"), "20");
  EXPECT_FALSE(json_lookup(doc, "a.c").has_value());
  EXPECT_FALSE(json_lookup(doc, "a.b.7").has_value());
  EXPECT_FALSE(json_lookup(doc, "a.b.x").has_value());
  EXPECT_FALSE(json_number(doc, "a").has_value());  // object, not number
}

// --- RunReport ------------------------------------------------------------

TEST(RunReport, RoundTripsKeyFields) {
  const Csr g = make_grid(25, 25);
  const GraphStats s = compute_stats(g);
  FDiamOptions opt;
  opt.start_policy = StartPolicy::kVertexZero;
  const DiameterResult r = fdiam_diameter(g, opt);

  obs::RunReport report = obs::make_run_report("grid25", s, opt, r);
  report.metrics = {{"custom.metric", 7.0}};
  std::ostringstream os;
  report.write_json(os);
  const std::string doc = os.str();

  ASSERT_TRUE(json_valid(doc)) << doc;
  EXPECT_EQ(json_string(doc, "schema"), "fdiam.run_report/v1");
  EXPECT_EQ(json_string(doc, "graph.name"), "grid25");
  EXPECT_EQ(json_number(doc, "graph.vertices"), 625.0);
  EXPECT_EQ(json_number(doc, "result.diameter"),
            static_cast<double>(r.diameter));
  EXPECT_EQ(json_string(doc, "options.start_policy"), "vertex_zero");
  EXPECT_EQ(json_number(doc, "stages.counts.bfs_calls"),
            static_cast<double>(r.stats.bfs_calls));
  EXPECT_EQ(json_number(doc, "stages.removed.evaluated"),
            static_cast<double>(r.stats.evaluated));
  EXPECT_EQ(json_number(doc, "bfs.traversals"),
            static_cast<double>(r.bfs.traversals));
  // Metric names may contain dots, so check presence textually.
  EXPECT_NE(doc.find("\"custom.metric\": 7"), std::string::npos);
  EXPECT_TRUE(json_string(doc, "env.timestamp").has_value());
  EXPECT_GE(json_number(doc, "env.omp_max_threads").value_or(0.0), 1.0);
  // Stage times must be present and non-negative, including "other".
  EXPECT_GE(json_number(doc, "stages.times_s.other").value_or(-1.0), 0.0);
  EXPECT_GE(json_number(doc, "stages.times_s.total").value_or(-1.0), 0.0);
}

// --- DiameterResult::bfs --------------------------------------------------

TEST(ResultBfsStats, PopulatedAndResetPerRun) {
  const Csr g = make_grid(30, 30);
  FDiam solver(g);
  const DiameterResult r1 = solver.run();
  EXPECT_GT(r1.bfs.traversals, 0u);
  EXPECT_GT(r1.bfs.levels, 0u);
  EXPECT_EQ(r1.bfs.topdown_levels + r1.bfs.bottomup_levels, r1.bfs.levels);
  EXPECT_GT(r1.bfs.edges_examined, 0u);
  // A second run on the same solver reports that run only, not the sum.
  const DiameterResult r2 = solver.run();
  EXPECT_EQ(r1.bfs.traversals, r2.bfs.traversals);
  EXPECT_EQ(r1.bfs.levels, r2.bfs.levels);
}

TEST(ResultBfsStats, BatchModeMergesPerThreadEngines) {
  const Csr g = make_erdos_renyi(400, 900, 7);
  FDiamOptions opt;
  opt.candidate_batch = 4;
  const DiameterResult r = fdiam_diameter(g, opt);
  // The 2-sweep runs on the shared engine; the candidates run on local
  // engines. All of it must land in result.bfs.
  EXPECT_GE(r.bfs.traversals, r.stats.ecc_computations);
}

// --- Per-level BFS profile ------------------------------------------------

TEST(BfsLevelProfile, FrontierSizesSumToVisitedCount) {
  const Csr g = make_grid(20, 20);
  for (const bool parallel : {false, true}) {
    BfsEngine engine(g, BfsConfig{parallel, true, 0.1});
    std::uint64_t frontier_sum = 0;
    std::uint64_t hook_levels = 0;
    engine.set_level_hook([&](const BfsLevelProfile& p) {
      frontier_sum += p.frontier;
      ++hook_levels;
      EXPECT_GE(p.micros, 0.0);
    });
    engine.eccentricity(0);
    EXPECT_EQ(frontier_sum, engine.last_visited_count()) << parallel;
    EXPECT_EQ(hook_levels, engine.stats().levels);
  }
}

TEST(BfsLevelProfile, DirectionCountsMatchEngineStats) {
  // A star forces a huge level-2 frontier, so the hybrid engine must take
  // at least one bottom-up level; the profile must agree with the stats.
  const Csr g = make_star(2000);
  BfsEngine engine(g, BfsConfig{false, true, 0.1});
  std::uint64_t topdown = 0, bottomup = 0;
  engine.set_level_hook([&](const BfsLevelProfile& p) {
    (p.bottom_up ? bottomup : topdown)++;
  });
  engine.eccentricity(1);  // a leaf: levels leaf -> hub -> all other leaves
  EXPECT_EQ(topdown, engine.stats().topdown_levels);
  EXPECT_EQ(bottomup, engine.stats().bottomup_levels);
  EXPECT_GT(bottomup, 0u);
  EXPECT_EQ(topdown + bottomup, engine.stats().levels);
}

TEST(BfsLevelProfile, ThreadedThroughFDiamOptions) {
  const Csr g = make_grid(25, 25);
  std::uint64_t hook_levels = 0;
  std::map<std::uint64_t, std::uint64_t> frontier_by_traversal;
  FDiamOptions opt;
  opt.level_profile = [&](const BfsLevelProfile& p) {
    ++hook_levels;
    frontier_by_traversal[p.traversal] += p.frontier;
  };
  const DiameterResult r = fdiam_diameter(g, opt);
  // Every eccentricity BFS of the run is profiled, level by level.
  EXPECT_EQ(hook_levels, r.bfs.levels);
  EXPECT_EQ(frontier_by_traversal.size(), r.bfs.traversals);
  std::uint64_t total = 0;
  for (const auto& [traversal, sum] : frontier_by_traversal) total += sum;
  EXPECT_EQ(total, r.bfs.vertices_visited);
}

// --- Metric registry ------------------------------------------------------

TEST(MetricRegistry, CountersAndGaugesExpose) {
  obs::MetricRegistry reg;
  reg.counter("a.count").inc(3);
  reg.counter("a.count").inc();
  reg.gauge("b.gauge").set(1.5);
  EXPECT_EQ(reg.counter("a.count").get(), 4);
  EXPECT_EQ(reg.size(), 2u);

  std::ostringstream text;
  reg.write_text(text);
  EXPECT_EQ(text.str(), "a.count 4\nb.gauge 1.5\n");

  std::ostringstream js;
  reg.write_json(js);
  EXPECT_TRUE(json_valid(js.str())) << js.str();
  // Metric names contain dots, which the dotted-path lookup would split,
  // so check the emitted fields textually.
  EXPECT_NE(js.str().find("\"a.count\":4"), std::string::npos) << js.str();
  EXPECT_NE(js.str().find("\"b.gauge\":1.5"), std::string::npos) << js.str();

  reg.reset_counters();
  EXPECT_EQ(reg.counter("a.count").get(), 0);
  EXPECT_EQ(reg.gauge("b.gauge").get(), 1.5);  // gauges keep their value
}

TEST(MetricRegistry, ConcurrentIncrementsAreLossless) {
  obs::MetricRegistry reg;
  constexpr int kIters = 20000;
#pragma omp parallel for schedule(static)
  for (int i = 0; i < kIters; ++i) {
    reg.counter("hot").inc();
    reg.gauge("last").set(static_cast<double>(i));
  }
  EXPECT_EQ(reg.counter("hot").get(), kIters);
}

TEST(MetricRegistry, GlobalRegistryIsAvailable) {
  obs::Counter& c = obs::metrics().counter("test.obs.global");
  const std::int64_t before = c.get();
  c.inc();
  EXPECT_EQ(obs::metrics().counter("test.obs.global").get(), before + 1);
}

// --- Bench harness JSON report --------------------------------------------

TEST(BenchJson, SchemaStableReport) {
  bench::reset_emitted_tables();
  bench::BenchConfig cfg;
  cfg.program = "unit_test";
  cfg.scale = 0.25;
  cfg.reps = 2;
  cfg.budget = 5.0;
  cfg.seed = 9;
  cfg.inputs = {"alpha", "beta"};

  Table t({"input", "seconds"});
  t.add_row({"alpha", "0.5"});
  t.add_row({"beta", "1.5"});
  {
    // emit() prints the table to stdout; silence it for the test log.
    std::ostringstream sink;
    auto* old = std::cout.rdbuf(sink.rdbuf());
    bench::emit(t, cfg, "unit table");
    std::cout.rdbuf(old);
  }

  std::ostringstream os;
  bench::write_bench_json(os, cfg);
  const std::string doc = os.str();
  bench::reset_emitted_tables();

  ASSERT_TRUE(json_valid(doc)) << doc;
  EXPECT_EQ(json_string(doc, "schema"), "fdiam.bench_report/v1");
  EXPECT_EQ(json_string(doc, "program"), "unit_test");
  EXPECT_EQ(json_number(doc, "config.seed"), 9.0);
  EXPECT_EQ(json_number(doc, "config.reps"), 2.0);
  EXPECT_EQ(json_string(doc, "config.inputs.1"), "beta");
  EXPECT_EQ(json_string(doc, "tables.0.title"), "unit table");
  EXPECT_EQ(json_string(doc, "tables.0.columns.1"), "seconds");
  EXPECT_EQ(json_string(doc, "tables.0.rows.1.0"), "beta");
  EXPECT_TRUE(json_string(doc, "env.build_type").has_value());

  const std::string prov = bench::provenance_line(cfg);
  EXPECT_NE(prov.find("program=unit_test"), std::string::npos);
  EXPECT_NE(prov.find("seed=9"), std::string::npos);
  EXPECT_NE(prov.find("inputs=alpha,beta"), std::string::npos);
}

}  // namespace
}  // namespace fdiam
