// Tests for graph statistics (the Table 1 columns).

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/stats.hpp"

namespace fdiam {
namespace {

TEST(Stats, GridStatistics) {
  const Csr g = make_grid(10, 10);
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.vertices, 100u);
  EXPECT_EQ(s.arcs, 2u * (9 * 10 + 10 * 9));
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.degree0, 0u);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.largest_component, 100u);
  EXPECT_NEAR(s.avg_degree, 3.6, 1e-9);
}

TEST(Stats, DegreeBucketsOnCaterpillar) {
  // Spine of 5 with 2 legs each: 10 degree-1 legs; spine interior has
  // degree 4, spine ends degree 3.
  const Csr g = make_caterpillar(5, 2);
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.degree1, 10u);
  EXPECT_EQ(s.degree2, 0u);
}

TEST(Stats, CountsIsolatedVertices) {
  EdgeList e(6);
  e.add(0, 1);
  const GraphStats s = compute_stats(Csr::from_edges(std::move(e)));
  EXPECT_EQ(s.degree0, 4u);
  EXPECT_EQ(s.num_components, 5u);
}

TEST(Stats, DegreeHistogramSumsToN) {
  const Csr g = make_barabasi_albert(500, 3.0, 42);
  const auto hist = degree_histogram(g, 32);
  std::uint64_t total = 0;
  for (const auto c : hist) total += c;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Stats, DegreeHistogramCapsBucket) {
  const Csr g = make_star(100);  // hub degree 100 lands in the cap bucket
  const auto hist = degree_histogram(g, 10);
  EXPECT_EQ(hist[10], 1u);
  EXPECT_EQ(hist[1], 100u);
}

TEST(Stats, EmptyGraphIsAllZero) {
  const GraphStats s = compute_stats(Csr::from_edges(EdgeList{}));
  EXPECT_EQ(s.vertices, 0u);
  EXPECT_EQ(s.arcs, 0u);
  EXPECT_EQ(s.avg_degree, 0.0);
}

}  // namespace
}  // namespace fdiam
