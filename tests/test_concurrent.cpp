// Concurrency regression tests for process-global solver state.
//
// The solver historically assumed one solve per process: the
// UtilCollector install slot, the flight-recorder crash registration,
// and the heartbeat snapshot flag were all process-global singletons.
// A serving daemon runs many solves concurrently, so these suites pin
// the fixed behavior: two threads running full F-Diam solves on
// DIFFERENT graphs — each with its own per-solve observability stack —
// produce bit-identical results and stats to the same solves run
// serially, and the per-solve collectors never alias each other.
//
// These tests run under the `tsan` ctest label (OMP_NUM_THREADS=1, so
// the std::thread interactions here are exactly what TSan inspects)
// and under the sanitize label in ASan/UBSan builds.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "obs/log/flight.hpp"
#include "obs/provenance.hpp"
#include "util/parallel.hpp"

namespace fdiam {
namespace {

/// The deterministic slice of a solve outcome: result fields plus every
/// counter that must not depend on scheduling.
struct SolveFingerprint {
  dist_t diameter = 0;
  vid_t witness = 0;
  bool connected = false;
  std::uint64_t bfs_calls = 0;
  std::uint64_t ecc_computations = 0;
  std::uint64_t winnow_calls = 0;
  vid_t removed_by_winnow = 0;
  vid_t removed_by_eliminate = 0;
  vid_t removed_by_chain = 0;
  vid_t evaluated = 0;

  bool operator==(const SolveFingerprint&) const = default;
};

SolveFingerprint solve(const Csr& g, obs::FlightRecorder* flight,
                       UtilCollector* util) {
  FDiamOptions opt;
  opt.flight = flight;
  opt.utilization = util;
  FDiam solver(g, opt);
  const DiameterResult r = solver.run();
  const FDiamStats& s = r.stats;
  return SolveFingerprint{r.diameter,          r.witness,
                          r.connected,         s.bfs_calls,
                          s.ecc_computations,  s.winnow_calls,
                          s.removed_by_winnow, s.removed_by_eliminate,
                          s.removed_by_chain,  s.evaluated};
}

TEST(ConcurrentSolves, TwoGraphsBitIdenticalToSerial) {
  const Csr a = make_rmat(11, 8.0, 0.57, 0.19, 0.19, 0x5eed);
  const Csr b = make_delaunay(1500, 0xbee5);

  // Serial ground truth, with plain per-solve observers.
  obs::FlightRecorder flight_serial;
  UtilCollector util_serial;
  const SolveFingerprint want_a = solve(a, &flight_serial, &util_serial);
  const SolveFingerprint want_b = solve(b, &flight_serial, &util_serial);

  // Concurrent solves, each with its OWN observability stack. Repeat a
  // few times to give interleavings a chance to differ.
  for (int round = 0; round < 3; ++round) {
    SolveFingerprint got_a, got_b;
    obs::FlightRecorder flight_a;
    obs::FlightRecorder flight_b;
    std::thread ta([&] {
      UtilCollector util;
      got_a = solve(a, &flight_a, &util);
    });
    std::thread tb([&] {
      UtilCollector util;
      got_b = solve(b, &flight_b, &util);
    });
    ta.join();
    tb.join();
    EXPECT_EQ(got_a, want_a) << "graph a, round " << round;
    EXPECT_EQ(got_b, want_b) << "graph b, round " << round;
  }
}

TEST(ConcurrentSolves, SharedGraphReadOnlySolves) {
  // Two solver instances over the SAME Csr (the daemon's normal case:
  // every query batch reads one shared mapped graph).
  const Csr g = make_watts_strogatz(2000, 4, 0.05, 0x77);
  const SolveFingerprint want = solve(g, nullptr, nullptr);
  SolveFingerprint got1, got2;
  std::thread t1([&] { got1 = solve(g, nullptr, nullptr); });
  std::thread t2([&] { got2 = solve(g, nullptr, nullptr); });
  t1.join();
  t2.join();
  EXPECT_EQ(got1, want);
  EXPECT_EQ(got2, want);
}

TEST(ConcurrentSolves, UtilCollectorInstallIsPerThread) {
  // Installing a collector on one thread must not be visible on another
  // — the old process-global slot made concurrent solves aggregate into
  // whichever collector was installed last.
  UtilCollector mine;
  UtilCollector::install(&mine);
  std::atomic<UtilCollector*> seen{&mine};
  std::thread peek([&] { seen.store(UtilCollector::active()); });
  peek.join();
  EXPECT_EQ(seen.load(), nullptr);
  EXPECT_EQ(UtilCollector::active(), &mine);
  UtilCollector::install(nullptr);
}

TEST(ConcurrentSolves, FlightRecorderRegistryTracksAllSolves) {
  // Two concurrent solves each register their recorder; a crash during
  // either would dump BOTH ring buffers (flight.cpp registry). Here we
  // just pin the registration lifecycle.
  const std::size_t before = obs::FlightRecorder::registered_count();
  {
    obs::FlightRecorder fa;
    obs::FlightRecorder fb;
    EXPECT_TRUE(obs::FlightRecorder::register_recorder(&fa));
    EXPECT_TRUE(obs::FlightRecorder::register_recorder(&fb));
    // Idempotent: re-registering the same recorder does not eat a slot.
    EXPECT_TRUE(obs::FlightRecorder::register_recorder(&fa));
    EXPECT_EQ(obs::FlightRecorder::registered_count(), before + 2);
    obs::FlightRecorder::unregister_recorder(&fa);
    obs::FlightRecorder::unregister_recorder(&fb);
  }
  EXPECT_EQ(obs::FlightRecorder::registered_count(), before);
}

TEST(ConcurrentSolves, HeartbeatSnapshotEpochReachesEveryHeartbeat) {
  // One SIGUSR1 (request_snapshot) must trigger EVERY live heartbeat,
  // not just whichever polls first — the old bool flag was consumed by
  // the first due() call.
  obs::ProgressHeartbeat h1(3600.0, /*force=*/true);
  obs::ProgressHeartbeat h2(3600.0, /*force=*/true);
  obs::ProgressHeartbeat::request_snapshot();
  bool h1_due = false, h2_due = false;
  // due() gates on a call counter; loop enough to pass the gate.
  for (int i = 0; i < 10000 && !h1_due; ++i) h1_due = h1.due();
  for (int i = 0; i < 10000 && !h2_due; ++i) h2_due = h2.due();
  EXPECT_TRUE(h1_due);
  EXPECT_TRUE(h2_due);
  // A heartbeat constructed AFTER the request does not fire for it.
  obs::ProgressHeartbeat h3(3600.0, /*force=*/true);
  bool h3_due = false;
  for (int i = 0; i < 10000 && !h3_due; ++i) h3_due = h3.due();
  EXPECT_FALSE(h3_due);
}

}  // namespace
}  // namespace fdiam
