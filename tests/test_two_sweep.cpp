// Tests for the 2-sweep / 4-sweep lower-bound heuristics.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/two_sweep.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

TEST(TwoSweep, ExactOnPath) {
  const Csr g = make_path(30);
  BfsEngine engine(g);
  const TwoSweepResult r = two_sweep(engine, 15);
  EXPECT_EQ(r.lower_bound, 29);
  EXPECT_TRUE(r.periphery == 0 || r.periphery == 29);
}

TEST(TwoSweep, ExactOnTree) {
  const Csr g = make_balanced_tree(3, 5);
  BfsEngine engine(g);
  // 2-sweep is exact on trees regardless of the start vertex.
  const TwoSweepResult r = two_sweep(engine, 0);
  EXPECT_EQ(r.lower_bound, apsp_diameter(g).diameter);
}

TEST(TwoSweep, LowerBoundNeverExceedsDiameter) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Csr g = make_erdos_renyi(300, 800, seed);
    BfsEngine engine(g);
    const TwoSweepResult r = two_sweep(engine, g.max_degree_vertex());
    EXPECT_LE(r.lower_bound, apsp_diameter(g).diameter) << "seed " << seed;
    EXPECT_GE(r.lower_bound, r.start_ecc / 2);
  }
}

TEST(TwoSweep, IsolatedStartVertex) {
  EdgeList e(5);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  BfsEngine engine(g);
  const TwoSweepResult r = two_sweep(engine, 4);
  EXPECT_EQ(r.lower_bound, 0);
  EXPECT_EQ(r.periphery, 4u);
}

TEST(PathMidpoint, FindsTheMiddleOfAPath) {
  const Csr g = make_path(21);
  BfsEngine engine(g);
  std::vector<dist_t> dist;
  engine.distances(0, dist);
  EXPECT_EQ(path_midpoint(g, dist, 20), 10u);
}

TEST(FourSweep, CenterOfPathIsMidpointAndBoundExact) {
  const Csr g = make_path(41);
  BfsEngine engine(g);
  const FourSweepResult r = four_sweep(engine, 3);
  EXPECT_EQ(r.lower_bound, 40);
  EXPECT_EQ(r.center, 20u);
}

TEST(FourSweep, BoundAtLeastAsGoodAsTwoSweepStart) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Csr g = make_barabasi_albert(400, 2.0, seed);
    BfsEngine engine(g);
    const FourSweepResult r = four_sweep(engine, 0);
    const dist_t diameter = apsp_diameter(g).diameter;
    EXPECT_LE(r.lower_bound, diameter);
    // 4-sweep's bound is within a factor 2 of optimal by construction.
    EXPECT_GE(2 * r.lower_bound, diameter);
  }
}

}  // namespace
}  // namespace fdiam
