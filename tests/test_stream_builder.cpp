// External-memory CSR builder (graph/stream_builder.hpp): the output
// must be byte-for-byte what the in-core from_edges + write_binary path
// produces, under any memory budget, for any edge feed order.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gen/generators.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/stream_builder.hpp"
#include "io/io.hpp"

namespace fdiam {
namespace {

namespace fs = std::filesystem;

class StreamBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdiam_stream_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }

  /// All undirected edges of g as (u, v) pairs with u < v.
  static std::vector<std::pair<vid_t, vid_t>> edges_of(const Csr& g) {
    std::vector<std::pair<vid_t, vid_t>> edges;
    for (vid_t u = 0; u < g.num_vertices(); ++u) {
      for (const vid_t v : g.neighbors(u)) {
        if (u < v) edges.emplace_back(u, v);
      }
    }
    return edges;
  }

  [[nodiscard]] std::string slurp(const fs::path& p) const {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  /// Stream g's edges (shuffled, duplicated) under `budget` and expect
  /// the output file to be byte-identical to write_binary(g).
  void expect_byte_identical(const Csr& g, std::uint64_t budget,
                             std::uint64_t seed) {
    io::write_binary(g, file("ref.csrbin"));

    auto edges = edges_of(g);
    std::mt19937_64 rng(seed);
    std::shuffle(edges.begin(), edges.end(), rng);

    StreamBuildOptions opt;
    opt.mem_budget_bytes = budget;
    StreamCsrBuilder b(file("out.csrbin"), opt);
    for (const auto& [u, v] : edges) {
      // Feed in both orientations and with duplicates — the builder must
      // canonicalize and dedup exactly like Csr::from_edges.
      if (rng() % 2 == 0) {
        b.add_edge(u, v);
      } else {
        b.add_edge(v, u);
      }
      if (rng() % 4 == 0) b.add_edge(u, v);
    }
    const StreamBuildStats st = b.finish();

    EXPECT_EQ(st.edges_unique, edges.size());
    EXPECT_EQ(st.num_vertices, g.num_vertices());
    EXPECT_EQ(st.output_bytes, fs::file_size(file("out.csrbin")));
    EXPECT_EQ(slurp(file("out.csrbin")), slurp(file("ref.csrbin")))
        << "budget " << budget;
  }

  fs::path dir_;
};

TEST_F(StreamBuilderTest, MatchesInCoreBuildAcrossBudgets) {
  const Csr g = make_rmat(10, 8.0, 0.45, 0.15, 0.15, 13);
  // From "everything fits in one chunk" down to "every chunk spills":
  // the clamped floor makes even budget=0 workable.
  for (const std::uint64_t budget :
       {std::uint64_t{1} << 30, std::uint64_t{1} << 20, std::uint64_t{0}}) {
    expect_byte_identical(g, budget, /*seed=*/budget + 1);
  }
}

TEST_F(StreamBuilderTest, TinyBudgetForcesSpillsAndStillMatches) {
  const Csr g = make_barabasi_albert(2000, 3.0, 17);
  StreamBuildOptions opt;
  opt.mem_budget_bytes = 0;  // clamped to the floor — maximal spilling
  io::write_binary(g, file("ref.csrbin"));
  StreamCsrBuilder b(file("out.csrbin"), opt);
  for (const auto& [u, v] : edges_of(g)) b.add_edge(u, v);
  const StreamBuildStats st = b.finish();
  EXPECT_GT(st.chunks_spilled, 0u);
  EXPECT_GT(st.spill_bytes, 0u);
  EXPECT_EQ(slurp(file("out.csrbin")), slurp(file("ref.csrbin")));
  // Spill runs are gone after a successful finish.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) ++files;
  EXPECT_EQ(files, 2u);  // ref + out, nothing else
}

TEST_F(StreamBuilderTest, MappedOutputSolvesLikeTheInCoreGraph) {
  const Csr g = make_grid(40, 25);
  StreamCsrBuilder b(file("grid.csrbin"), {});
  for (const auto& [u, v] : edges_of(g)) b.add_edge(u, v);
  b.finish();
  const Csr mapped = io::map_binary(file("grid.csrbin"));
  ASSERT_TRUE(mapped.is_mapped());
  ASSERT_EQ(mapped.num_vertices(), g.num_vertices());
  ASSERT_EQ(mapped.num_arcs(), g.num_arcs());
  EXPECT_TRUE(std::ranges::equal(mapped.offsets(), g.offsets()));
  EXPECT_TRUE(std::ranges::equal(mapped.raw_neighbors(), g.raw_neighbors()));
}

TEST_F(StreamBuilderTest, SelfLoopsDropButStillCountTowardVertices) {
  // Matches Csr::from_edges semantics: the loop endpoint defines n.
  StreamCsrBuilder b(file("loop.csrbin"), {});
  b.add_edge(0, 1);
  b.add_edge(9, 9);
  const StreamBuildStats st = b.finish();
  EXPECT_EQ(st.edges_in, 2u);
  EXPECT_EQ(st.edges_unique, 1u);
  EXPECT_EQ(st.num_vertices, 10u);

  EdgeList e(10);
  e.add(0, 1);
  const Csr ref = Csr::from_edges(std::move(e));
  io::write_binary(ref, file("ref.csrbin"));
  EXPECT_EQ(slurp(file("loop.csrbin")), slurp(file("ref.csrbin")));
}

TEST_F(StreamBuilderTest, EmptyBuildYieldsTheEmptyGraphFile) {
  StreamCsrBuilder b(file("empty.csrbin"), {});
  const StreamBuildStats st = b.finish();
  EXPECT_EQ(st.edges_unique, 0u);
  EXPECT_EQ(st.num_vertices, 0u);
  io::write_binary(Csr{}, file("ref.csrbin"));
  EXPECT_EQ(slurp(file("empty.csrbin")), slurp(file("ref.csrbin")));
  EXPECT_EQ(io::read_binary(file("empty.csrbin")).num_vertices(), 0u);
}

TEST_F(StreamBuilderTest, AbandonedBuilderLeavesNoTempFiles) {
  {
    StreamCsrBuilder b(file("never.csrbin"), [] {
      StreamBuildOptions o;
      o.mem_budget_bytes = 0;  // floor-sized chunks: guarantee spills
      return o;
    }());
    for (vid_t i = 0; i < 100000; ++i) b.add_edge(i, i + 1);
    // finish() never called — destructor must clean up the spill runs.
  }
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) ++files;
  EXPECT_EQ(files, 0u);
}

TEST_F(StreamBuilderTest, SnapStreamingMatchesTheEagerSnapReader) {
  const Csr g = make_barabasi_albert(600, 2.5, 29);
  io::write_snap(g, file("g.txt"));

  const StreamBuildStats st =
      stream_build_snap(file("g.txt"), file("g.csrbin"), {});
  EXPECT_EQ(st.num_vertices, g.num_vertices());

  io::write_binary(io::read_snap(file("g.txt")), file("ref.csrbin"));
  EXPECT_EQ(slurp(file("g.csrbin")), slurp(file("ref.csrbin")));
}

TEST_F(StreamBuilderTest, SnapStreamingValidatesLikeReadSnap) {
  const auto write_text = [&](const std::string& name,
                              const std::string& text) {
    std::ofstream out(file(name));
    out << text;
    return file(name);
  };
  // Comments, blank lines, extra columns tolerated.
  const auto ok = write_text("ok.txt", "# c\n\n0 1 999 0.5\n1 2\n");
  const StreamBuildStats st = stream_build_snap(ok, file("ok.csrbin"), {});
  EXPECT_EQ(st.num_vertices, 3u);
  EXPECT_EQ(st.edges_unique, 2u);

  // Malformed lines and oversized ids throw, like io::read_snap.
  EXPECT_THROW(stream_build_snap(write_text("bad1.txt", "0 1\nnope\n"),
                                 file("b1.csrbin"), {}),
               std::runtime_error);
  EXPECT_THROW(stream_build_snap(write_text("bad2.txt", "0 4294967296\n"),
                                 file("b2.csrbin"), {}),
               std::runtime_error);
  EXPECT_THROW(stream_build_snap(file("absent.txt"), file("b3.csrbin"), {}),
               std::runtime_error);
}

TEST_F(StreamBuilderTest, FailedFinishLeavesNoArtifacts) {
  // A failure AFTER the output file has been created (the "offsets"
  // checkpoint fires once the header + offsets section hit disk) must
  // remove the partial .csrbin along with the spill runs — a daemon
  // pointing map_binary at the output path must never see a torn file.
  for (const char* phase : {"degrees", "offsets", "neighbors"}) {
    StreamBuildOptions opt;
    opt.mem_budget_bytes = 0;  // force spills so both run sets exist
    opt.checkpoint = [phase](const char* at) {
      if (std::string_view(at) == phase) {
        throw std::runtime_error("injected failure");
      }
    };
    StreamCsrBuilder b(file("out.csrbin"), opt);
    for (vid_t i = 0; i < 50000; ++i) b.add_edge(i, i + 1);
    EXPECT_THROW(b.finish(), std::runtime_error) << phase;
    std::size_t files = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_)) {
      ++files;
    }
    EXPECT_EQ(files, 0u) << "phase " << phase
                         << " left artifacts behind";
  }
}

TEST_F(StreamBuilderTest, FailedFinishThenRetrySucceeds) {
  // The output path is clean after a failure, so a retry at the same
  // path produces the byte-exact graph.
  const Csr g = make_rmat(9, 8.0, 0.45, 0.15, 0.15, 23);
  io::write_binary(g, file("ref.csrbin"));
  StreamBuildOptions failing;
  failing.checkpoint = [](const char* at) {
    if (std::string_view(at) == "offsets") {
      throw std::runtime_error("injected failure");
    }
  };
  {
    StreamCsrBuilder b(file("out.csrbin"), failing);
    for (const auto& [u, v] : edges_of(g)) b.add_edge(u, v);
    EXPECT_THROW(b.finish(), std::runtime_error);
  }
  EXPECT_FALSE(fs::exists(file("out.csrbin")));
  StreamCsrBuilder retry(file("out.csrbin"));
  for (const auto& [u, v] : edges_of(g)) retry.add_edge(u, v);
  retry.finish();
  EXPECT_EQ(slurp(file("out.csrbin")), slurp(file("ref.csrbin")));
}

}  // namespace
}  // namespace fdiam
