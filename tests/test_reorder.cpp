// Tests for vertex relabeling: permutation validity and the invariance of
// every distance-derived quantity under relabeling.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"

namespace fdiam {
namespace {

TEST(Reorder, DegreeOrderPutsHubsFirst) {
  const Csr g = make_barabasi_albert(300, 2.0, 3);
  const Permutation p = degree_order(g);
  ASSERT_TRUE(is_permutation(g, p));
  const Csr h = apply_permutation(g, p);
  for (vid_t v = 0; v + 1 < h.num_vertices(); ++v) {
    EXPECT_GE(h.degree(v), h.degree(v + 1));
  }
}

TEST(Reorder, BfsOrderIsAPermutation) {
  const Csr g = disjoint_union(make_grid(10, 10), make_path(15));
  EXPECT_TRUE(is_permutation(g, bfs_order(g)));
}

TEST(Reorder, RandomOrderIsAPermutationAndSeeded) {
  const Csr g = make_cycle(100);
  const Permutation a = random_order(g, 5);
  const Permutation b = random_order(g, 5);
  const Permutation c = random_order(g, 6);
  EXPECT_TRUE(is_permutation(g, a));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Reorder, ApplyRejectsNonBijections) {
  const Csr g = make_path(4);
  EXPECT_THROW(apply_permutation(g, {0, 0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(apply_permutation(g, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(apply_permutation(g, {0, 1, 2, 9}), std::invalid_argument);
}

struct OrderCase {
  const char* name;
  Permutation (*make)(const Csr&);
};

class ReorderInvariance : public ::testing::TestWithParam<OrderCase> {};

TEST_P(ReorderInvariance, DiameterAndStatsAreInvariant) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Csr g = make_erdos_renyi(200, 500, seed);
    const Csr h = apply_permutation(g, GetParam().make(g));
    EXPECT_EQ(g.num_vertices(), h.num_vertices());
    EXPECT_EQ(g.num_arcs(), h.num_arcs());
    EXPECT_EQ(apsp_diameter(g).diameter, apsp_diameter(h).diameter);
    EXPECT_EQ(fdiam_diameter(g).diameter, fdiam_diameter(h).diameter);
    const GraphStats sg = compute_stats(g), sh = compute_stats(h);
    EXPECT_EQ(sg.max_degree, sh.max_degree);
    EXPECT_EQ(sg.num_components, sh.num_components);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, ReorderInvariance,
    ::testing::Values(OrderCase{"degree", degree_order},
                      OrderCase{"bfs", bfs_order},
                      OrderCase{"random",
                                [](const Csr& g) {
                                  return random_order(g, 42);
                                }}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Reorder, BfsOrderImprovesNeighborLocality) {
  // The point of the module: after BFS ordering, adjacent vertices have
  // nearby ids. Compare the mean |id(u) - id(v)| gap across edges.
  const Csr g = apply_permutation(make_grid(60, 60),
                                  random_order(make_grid(60, 60), 3));
  const Csr h = apply_permutation(g, bfs_order(g));
  auto mean_gap = [](const Csr& x) {
    double total = 0;
    for (vid_t v = 0; v < x.num_vertices(); ++v) {
      for (const vid_t w : x.neighbors(v)) {
        total += std::abs(static_cast<double>(v) - static_cast<double>(w));
      }
    }
    return total / static_cast<double>(x.num_arcs());
  };
  EXPECT_LT(mean_gap(h) * 4, mean_gap(g));
}

}  // namespace
}  // namespace fdiam
