// Tests for the thread-time observability layer: the folded-stack profile
// container (parse/merge/rank/SVG plus malformed-input negatives), the
// parallel-region utilization collector as driven by a real solver run,
// the sampling profiler's lifecycle (start/stop/restart, signal delivery
// during OpenMP regions), and the JSON report round-trip through the
// diagnose_profile_block / diagnose_utilization_block validators.
//
// Sampler tests are wall-clock dependent by nature: they spin a busy loop
// until samples arrive with a generous timeout, and skip (not fail) when
// the platform cannot start the profiler at all — CI sandboxes sometimes
// filter timer signals.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/stats.hpp"
#include "obs/json.hpp"
#include "obs/prof/folded.hpp"
#include "obs/prof/prof_report.hpp"
#include "obs/prof/sampler.hpp"
#include "obs/report.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace fdiam {
namespace {

using obs::json_number;
using obs::json_string;
using obs::json_valid;
using prof::FoldedProfile;
using prof::Sampler;
using prof::SamplerOptions;

// --- FoldedProfile --------------------------------------------------------

TEST(FoldedProfile, ParseMergeAndTotals) {
  FoldedProfile p;
  std::istringstream in(
      "main;run;bfs 10\n"
      "main;run;winnow 5\n"
      "main;run;bfs 2\n");
  p.parse(in);
  EXPECT_EQ(p.size(), 2u);       // the two bfs lines merge
  EXPECT_EQ(p.total(), 17u);

  FoldedProfile q;
  q.add("main;run;bfs", 3);
  q.add("main;other", 1);
  p.merge(q);
  EXPECT_EQ(p.total(), 21u);
  EXPECT_EQ(p.stacks().at("main;run;bfs"), 15u);
}

TEST(FoldedProfile, FrameTotalsSelfVsInclusive) {
  FoldedProfile p;
  p.add("a;b;c", 4);
  p.add("a;b", 2);
  p.add("a;d", 1);
  const auto totals = p.frame_totals();
  // Ranked by self count descending: c(4), b(2), d(1), a(0).
  ASSERT_EQ(totals.size(), 4u);
  EXPECT_EQ(totals[0].name, "c");
  EXPECT_EQ(totals[0].self, 4u);
  EXPECT_EQ(totals[0].total, 4u);
  EXPECT_EQ(totals[1].name, "b");
  EXPECT_EQ(totals[1].self, 2u);
  EXPECT_EQ(totals[1].total, 6u);
  // The root appears in every stack but is never a leaf.
  const auto& a = totals[3];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.self, 0u);
  EXPECT_EQ(a.total, 7u);
}

TEST(FoldedProfile, RecursiveFramesCountOncePerStack) {
  FoldedProfile p;
  p.add("f;f;f", 5);  // direct recursion
  const auto totals = p.frame_totals();
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].total, 5u);  // not 15
  EXPECT_EQ(totals[0].self, 5u);
}

TEST(FoldedProfile, DemangledNamesWithSpacesSurviveRoundTrip) {
  FoldedProfile p;
  const std::string stack =
      "main;fdiam::Bfs::run(std::vector<int, std::allocator<int> > const&)";
  p.add(stack, 7);
  std::ostringstream out;
  p.write(out);
  FoldedProfile back;
  std::istringstream in(out.str());
  back.parse(in);
  EXPECT_EQ(back.stacks().at(stack), 7u);
}

TEST(FoldedProfile, ParseRejectsMalformedInput) {
  for (const char* bad : {
           "main;run banana\n",  // non-numeric count
           "main;run\n",         // no count at all
           " 12\n",              // empty stack
           "main;run 12trailing\n",
       }) {
    FoldedProfile p;
    std::istringstream in(bad);
    EXPECT_THROW(p.parse(in), std::runtime_error) << bad;
  }
}

TEST(FoldedProfile, ParseToleratesBlankLinesAndEmptyInput) {
  FoldedProfile p;
  std::istringstream in("\n\nmain 3\n\n");
  p.parse(in);
  EXPECT_EQ(p.total(), 3u);
  FoldedProfile empty;
  std::istringstream nothing("");
  empty.parse(nothing);
  EXPECT_TRUE(empty.empty());
}

TEST(FoldedProfile, SvgIsWellFormedAndContainsFrames) {
  FoldedProfile p;
  p.add("main;solve;bfs", 30);
  p.add("main;solve;winnow", 10);
  p.add("main;io", 2);
  std::ostringstream out;
  p.write_svg(out, "test profile");
  const std::string svg = out.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("test profile"), std::string::npos);
  EXPECT_NE(svg.find("bfs"), std::string::npos);
  EXPECT_NE(svg.find("winnow"), std::string::npos);
}

TEST(FoldedProfile, SvgEscapesMarkupInFrameNames) {
  FoldedProfile p;
  p.add("main;std::vector<Foo>::push_back", 3);
  std::ostringstream out;
  p.write_svg(out, "a<b & \"c\"");
  const std::string svg = out.str();
  // Raw angle brackets from the template argument must not survive.
  EXPECT_EQ(svg.find("vector<Foo>"), std::string::npos);
  EXPECT_NE(svg.find("vector&lt;Foo&gt;"), std::string::npos);
}

// --- UtilCollector / RegionScope ------------------------------------------

TEST(Utilization, SolverRunPopulatesAllAggregates) {
  const Csr g = make_grid(60, 60);
  UtilCollector util;
  FDiamOptions opt;
  opt.utilization = &util;
  const DiameterResult r = fdiam_diameter(g, opt);

  const UtilStats& u = r.stats.util;
  ASSERT_TRUE(u.enabled);
  EXPECT_GE(u.threads, 1);
  EXPECT_LE(u.threads, UtilCollector::kMaxThreads);
  EXPECT_GT(u.total.regions, 0u);
  EXPECT_GT(u.total.items, 0u);  // edges were attributed
  EXPECT_GT(u.total.wall_s, 0.0);
  EXPECT_GE(u.total.busy_s, 0.0);
  EXPECT_GE(u.total.busy_ratio(), 0.0);
  EXPECT_LE(u.total.busy_ratio(), 1.0 + 1e-9);
  EXPECT_GE(u.total.imbalance(), 1.0);
  ASSERT_EQ(u.per_thread.size(), static_cast<std::size_t>(u.threads));

  // Stage attribution: a grid run must at least traverse in init (the
  // 2-sweep) and ecc (the evaluation loop); stage sums must reconcile
  // with the total.
  EXPECT_GT(u.stages[static_cast<std::size_t>(UtilStage::kInit)].regions, 0u);
  EXPECT_GT(u.stages[static_cast<std::size_t>(UtilStage::kEcc)].regions, 0u);
  std::uint64_t stage_regions = 0;
  double stage_busy = 0.0;
  for (const UtilAgg& a : u.stages) {
    stage_regions += a.regions;
    stage_busy += a.busy_s;
  }
  EXPECT_EQ(stage_regions, u.total.regions);
  EXPECT_NEAR(stage_busy, u.total.busy_s, 1e-9);
  std::uint64_t kind_regions = 0;
  for (const UtilAgg& a : u.kinds) kind_regions += a.regions;
  EXPECT_EQ(kind_regions, u.total.regions);

  // Per-thread totals reconcile with the aggregate too.
  double thread_busy = 0.0;
  std::uint64_t thread_items = 0;
  for (const UtilThread& t : u.per_thread) {
    thread_busy += t.busy_s;
    thread_items += t.items;
  }
  EXPECT_NEAR(thread_busy, u.total.busy_s, 1e-9);
  EXPECT_EQ(thread_items, u.total.items);
}

TEST(Utilization, DisabledRunLeavesStatsEmpty) {
  const Csr g = make_grid(20, 20);
  const DiameterResult r = fdiam_diameter(g, FDiamOptions{});
  EXPECT_FALSE(r.stats.util.enabled);
  EXPECT_EQ(r.stats.util.total.regions, 0u);
}

TEST(Utilization, CollectorResetsBetweenRuns) {
  const Csr g = make_grid(30, 30);
  UtilCollector util;
  FDiamOptions opt;
  opt.utilization = &util;
  const DiameterResult r1 = fdiam_diameter(g, opt);
  const DiameterResult r2 = fdiam_diameter(g, opt);
  // Deterministic solver: the second run must report the same region
  // count, not the sum of both runs.
  EXPECT_EQ(r1.stats.util.total.regions, r2.stats.util.total.regions);
  EXPECT_EQ(r1.stats.util.total.items, r2.stats.util.total.items);
}

TEST(Utilization, InstallIsRestoredAfterRun) {
  ASSERT_EQ(UtilCollector::active(), nullptr);
  const Csr g = make_grid(15, 15);
  UtilCollector util;
  FDiamOptions opt;
  opt.utilization = &util;
  (void)fdiam_diameter(g, opt);
  EXPECT_EQ(UtilCollector::active(), nullptr);
}

TEST(Utilization, AggInvariantHelpers) {
  UtilAgg a;
  EXPECT_EQ(a.busy_ratio(), 0.0);
  EXPECT_EQ(a.imbalance(), 0.0);  // nothing recorded
  a.regions = 1;
  a.wall_s = 1.0;
  a.busy_s = 1.5;
  a.max_busy_s = 1.0;
  a.mean_busy_s = 0.75;
  a.threads_x_wall_s = 2.0;
  EXPECT_NEAR(a.busy_ratio(), 0.75, 1e-12);
  EXPECT_NEAR(a.idle_fraction(), 0.25, 1e-12);
  EXPECT_NEAR(a.barrier_wait_s(), 0.5, 1e-12);
  EXPECT_NEAR(a.imbalance(), 1.0 / 0.75, 1e-12);
}

// --- Sampler ---------------------------------------------------------------

/// Spin an OpenMP-parallel busy loop until the sampler has captured at
/// least `want` samples or `timeout_s` elapsed. Returns samples seen.
std::uint64_t spin_until_samples(std::uint64_t want, double timeout_s) {
  Timer t;
  volatile double sink = 0.0;
  while (Sampler::instance().sample_count() < want &&
         t.seconds() < timeout_s) {
#ifdef _OPENMP
#pragma omp parallel
#endif
    {
      double local = 0.0;
      for (int i = 0; i < 200000; ++i) {
        local += static_cast<double>(i % 97) * 1e-9;
      }
#ifdef _OPENMP
#pragma omp atomic
#endif
      sink = sink + local;
    }
  }
  return Sampler::instance().sample_count();
}

TEST(SamplerTest, StartStopRestartLifecycle) {
  Sampler& s = Sampler::instance();
  ASSERT_FALSE(s.running());
  SamplerOptions opt;
  opt.rate_hz = 997.0;  // fast, so the busy loop below is short
  if (!s.start(opt)) {
    GTEST_SKIP() << "sampler unavailable: " << s.reason();
  }
  EXPECT_TRUE(s.running());
  // Double-start must fail crisply without disturbing the running one.
  EXPECT_FALSE(s.start(opt));
  EXPECT_TRUE(s.running());

  const std::uint64_t got = spin_until_samples(3, 10.0);
  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_GE(got, 3u) << "no SIGPROF delivery within timeout";
  const auto summary = s.summary();
  EXPECT_TRUE(summary.available);
  EXPECT_GE(summary.threads, 1);
  EXPECT_EQ(summary.samples, s.sample_count());
  EXPECT_GT(summary.duration_s, 0.0);

  // Restart: a second session must reset the counters and capture fresh
  // samples rather than appending to the first session's buffers.
  ASSERT_TRUE(s.start(opt));
  EXPECT_EQ(s.sample_count(), 0u);
  (void)spin_until_samples(1, 10.0);
  s.stop();
  EXPECT_GE(s.sample_count(), 1u);
  // Stop when already stopped is a no-op.
  s.stop();
  EXPECT_FALSE(s.running());
}

TEST(SamplerTest, FoldedStacksAreParseableAndNonTrivial) {
  Sampler& s = Sampler::instance();
  SamplerOptions opt;
  opt.rate_hz = 997.0;
  if (!s.start(opt)) {
    GTEST_SKIP() << "sampler unavailable: " << s.reason();
  }
  const std::uint64_t got = spin_until_samples(5, 10.0);
  s.stop();
  if (got == 0) GTEST_SKIP() << "no samples captured";

  const FoldedProfile p = s.folded();
  ASSERT_FALSE(p.empty());
  EXPECT_LE(p.total(), s.sample_count());  // truncated records may drop
  // Round-trip through the text format.
  std::ostringstream out;
  p.write(out);
  FoldedProfile back;
  std::istringstream in(out.str());
  back.parse(in);
  EXPECT_EQ(back.total(), p.total());
  // No stack may keep the sampler's own machinery as its leaf.
  for (const auto& [stack, count] : p.stacks()) {
    EXPECT_EQ(stack.find("profiler_signal_handler"), std::string::npos)
        << stack;
  }
}

TEST(SamplerTest, RejectsBadOptions) {
  Sampler& s = Sampler::instance();
  ASSERT_FALSE(s.running());
  SamplerOptions opt;
  opt.rate_hz = 0.0;
  EXPECT_FALSE(s.start(opt));
  EXPECT_FALSE(s.reason().empty());
  opt.rate_hz = 100.0;
  opt.ring_words = 8;  // below the documented floor
  EXPECT_FALSE(s.start(opt));
}

// --- Report round-trip -----------------------------------------------------

TEST(ProfReport, UtilizationBlockValidatesInRunReport) {
  const Csr g = make_grid(40, 40);
  const GraphStats stats = compute_stats(g);
  UtilCollector util;
  FDiamOptions opt;
  opt.utilization = &util;
  const DiameterResult r = fdiam_diameter(g, opt);

  obs::RunReport report = obs::make_run_report("grid40", stats, opt, r);
  std::ostringstream os;
  report.write_json(os);
  const std::string doc = os.str();

  ASSERT_TRUE(json_valid(doc)) << doc;
  EXPECT_EQ(json_string(doc, "utilization.schema"), "fdiam.utilization/v1");
  EXPECT_EQ(obs::json_lookup(doc, "utilization.enabled"), "true");
  EXPECT_GE(json_number(doc, "utilization.threads").value_or(0.0), 1.0);
  EXPECT_GT(json_number(doc, "utilization.total.regions").value_or(0.0),
            0.0);
  // The semantic validator must accept its own writer's output.
  EXPECT_EQ(obs::diagnose_utilization_block(doc), std::nullopt);
  EXPECT_EQ(obs::diagnose_profile_block(doc), std::nullopt);  // absent: ok
}

TEST(ProfReport, DisabledUtilizationSerializesAsEnabledFalse) {
  const Csr g = make_grid(10, 10);
  const GraphStats stats = compute_stats(g);
  FDiamOptions opt;
  const DiameterResult r = fdiam_diameter(g, opt);
  obs::RunReport report = obs::make_run_report("grid10", stats, opt, r);
  std::ostringstream os;
  report.write_json(os);
  const std::string doc = os.str();
  EXPECT_EQ(obs::json_lookup(doc, "utilization.enabled"), "false");
  EXPECT_EQ(obs::diagnose_utilization_block(doc), std::nullopt);
}

TEST(ProfReport, ProfileBlockRoundTripsThroughValidator) {
  prof::ProfileSummary s;
  s.enabled = true;
  s.available = true;
  s.rate_hz = 197.0;
  s.duration_s = 1.5;
  s.threads = 2;
  s.samples = 300;
  s.dropped = 1;
  s.top.push_back({"fdiam::BfsEngine::run", 120, 290});
  s.top.push_back({"fdiam::FDiam::run", 10, 300});

  const Csr g = make_grid(10, 10);
  const GraphStats stats = compute_stats(g);
  FDiamOptions opt;
  const DiameterResult r = fdiam_diameter(g, opt);
  obs::RunReport report = obs::make_run_report("grid10", stats, opt, r);
  report.profile = &s;
  std::ostringstream os;
  report.write_json(os);
  const std::string doc = os.str();

  ASSERT_TRUE(json_valid(doc)) << doc;
  EXPECT_EQ(json_string(doc, "profile.schema"), "fdiam.profile/v1");
  EXPECT_EQ(json_number(doc, "profile.samples"), 300.0);
  EXPECT_EQ(json_string(doc, "profile.top.0.frame"),
            "fdiam::BfsEngine::run");
  EXPECT_EQ(obs::diagnose_profile_block(doc), std::nullopt);
}

TEST(ProfReport, ValidatorsCatchCorruptedBlocks) {
  // Hand-built minimal documents with one invariant broken each.
  const std::string bad_schema =
      R"({"profile": {"schema": "fdiam.profile/v0", "rate_hz": 1,)"
      R"( "duration_s": 1, "threads": 1, "samples": 1, "dropped": 0,)"
      R"( "top": []}})";
  EXPECT_TRUE(obs::diagnose_profile_block(bad_schema).has_value());

  const std::string self_over_total =
      R"({"profile": {"schema": "fdiam.profile/v1", "rate_hz": 1,)"
      R"( "duration_s": 1, "threads": 1, "samples": 10, "dropped": 0,)"
      R"( "top": [{"frame": "f", "self": 5, "total": 3}]}})";
  const auto diag = obs::diagnose_profile_block(self_over_total);
  ASSERT_TRUE(diag.has_value());
  EXPECT_NE(diag->find("self exceeds total"), std::string::npos) << *diag;

  const std::string bad_stage_tag =
      R"({"utilization": {"schema": "fdiam.utilization/v1",)"
      R"( "enabled": true, "threads": 1,)"
      R"( "total": {"regions": 1, "items": 0, "wall_s": 1, "busy_s": 1,)"
      R"( "barrier_wait_s": 0, "busy_ratio": 1, "idle_fraction": 0,)"
      R"( "imbalance": 1},)"
      R"( "stages": {"warp_drive": {"regions": 1, "items": 0, "wall_s": 1,)"
      R"( "busy_s": 1, "barrier_wait_s": 0, "busy_ratio": 1,)"
      R"( "idle_fraction": 0, "imbalance": 1}},)"
      R"( "regions": {}, "per_thread": [{"regions": 1, "items": 0,)"
      R"( "busy_s": 1}]}})";
  const auto stage_diag = obs::diagnose_utilization_block(bad_stage_tag);
  ASSERT_TRUE(stage_diag.has_value());
  EXPECT_NE(stage_diag->find("warp_drive"), std::string::npos) << *stage_diag;

  const std::string ratio_over_one =
      R"({"utilization": {"schema": "fdiam.utilization/v1",)"
      R"( "enabled": true, "threads": 1,)"
      R"( "total": {"regions": 1, "items": 0, "wall_s": 1, "busy_s": 2,)"
      R"( "barrier_wait_s": 0, "busy_ratio": 1.5, "idle_fraction": 0,)"
      R"( "imbalance": 1},)"
      R"( "stages": {}, "regions": {}, "per_thread": [{"regions": 1,)"
      R"( "items": 0, "busy_s": 2}]}})";
  EXPECT_TRUE(obs::diagnose_utilization_block(ratio_over_one).has_value());

  const std::string thread_arity =
      R"({"utilization": {"schema": "fdiam.utilization/v1",)"
      R"( "enabled": true, "threads": 2,)"
      R"( "total": {"regions": 1, "items": 0, "wall_s": 1, "busy_s": 1,)"
      R"( "barrier_wait_s": 0, "busy_ratio": 1, "idle_fraction": 0,)"
      R"( "imbalance": 1},)"
      R"( "stages": {}, "regions": {}, "per_thread": [{"regions": 1,)"
      R"( "items": 0, "busy_s": 1}]}})";
  const auto arity_diag = obs::diagnose_utilization_block(thread_arity);
  ASSERT_TRUE(arity_diag.has_value());
  EXPECT_NE(arity_diag->find("per_thread"), std::string::npos) << *arity_diag;
}

}  // namespace
}  // namespace fdiam
