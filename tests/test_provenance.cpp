// Provenance-layer tests: stage-tag pinning on hand-built graphs, the
// invariant auditor run end-to-end across engine modes (including the
// capped-bound path that forces bound raises), binary-log roundtrip and
// corruption negatives, the run-report block diagnostics, and the
// progress heartbeat.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "obs/audit.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace fdiam {
namespace {

/// Solve `g` with a collector attached and hand back the finished log.
std::pair<DiameterResult, obs::ProvenanceLog> run_with_provenance(
    const Csr& g, FDiamOptions opt = {}) {
  obs::ProvenanceCollector collector;
  opt.provenance = &collector;
  DiameterResult r = fdiam_diameter(g, opt);
  return {std::move(r), collector.log()};
}

void expect_audit_clean(const Csr& g, const obs::ProvenanceLog& log,
                        const std::string& what) {
  const obs::AuditResult res = obs::audit_provenance(g, log, {});
  EXPECT_TRUE(res.ok) << what << ": "
                      << (res.errors.empty() ? "(no errors listed)"
                                             : res.errors.front());
}

std::uint64_t stage_count(const obs::ProvenanceLog& log, obs::ProvStage s) {
  return log.stage_histogram()[static_cast<std::size_t>(s)];
}

TEST(Provenance, CompletedRunRecordsEveryVertex) {
  const Csr g = make_path(50);
  const auto [r, log] = run_with_provenance(g);
  EXPECT_EQ(r.diameter, 49);
  ASSERT_EQ(log.records.size(), g.num_vertices());
  EXPECT_EQ(log.removed_count(), g.num_vertices());  // no kActive leftovers
  EXPECT_EQ(log.diameter, 49);
  EXPECT_TRUE(log.connected);
  EXPECT_FALSE(log.timed_out);
  EXPECT_FALSE(log.capped);
  expect_audit_clean(g, log, "path-50");
}

TEST(Provenance, StarPinsWinnowAroundTheHub) {
  // Star: the max-degree start is the hub (ecc 1), bound 2, winnow radius
  // 1 — every leaf that the 2-sweep did not already evaluate must carry a
  // winnow record anchored at the hub.
  const Csr g = make_star(64);
  const auto [r, log] = run_with_provenance(g);
  EXPECT_EQ(r.diameter, 2);
  EXPECT_GE(stage_count(log, obs::ProvStage::kWinnow), 60u);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (log.records[v].stage == obs::ProvStage::kWinnow) {
      EXPECT_EQ(g.degree(log.records[v].anchor), 64u)
          << "winnow record of leaf " << v << " not anchored at the hub";
      EXPECT_EQ(log.records[v].value, -1);
    }
  }
  expect_audit_clean(g, log, "star-64");
}

TEST(Provenance, CaterpillarPinsChainStages) {
  // Caterpillar: the spine is a long degree-2 chain whose two tips are
  // degree 1 — chain processing must tag both tail interiors and the
  // eliminated region around each anchor.
  const Csr g = make_caterpillar(40, 2);
  const auto [r, log] = run_with_provenance(g);
  EXPECT_EQ(r.diameter, 41);
  EXPECT_GT(stage_count(log, obs::ProvStage::kChainTail), 0u);
  EXPECT_GT(stage_count(log, obs::ProvStage::kChainAnchorRegion), 0u);
  expect_audit_clean(g, log, "caterpillar-40x2");
}

TEST(Provenance, DisconnectedInputAuditsAgainstComponentDiameter) {
  // The solver reports the largest component diameter for disconnected
  // inputs; the auditor's per-component ground truth must agree, and the
  // log must carry connected = false.
  const Csr g = disjoint_union(make_path(9), make_cycle(14));
  const auto [r, log] = run_with_provenance(g);
  EXPECT_FALSE(r.connected);
  EXPECT_FALSE(log.connected);
  EXPECT_EQ(log.diameter, 8);
  expect_audit_clean(g, log, "path-9 + cycle-14");
}

TEST(Provenance, AuditPassesAcrossEngineModes) {
  // The same seeded graphs, solved by every engine variant that threads
  // through different removal sites (parallel CAS winners, serial scans,
  // the rejected batch mode, ablations that shift work between stages):
  // every variant must produce an audit-clean log.
  struct Mode {
    const char* name;
    FDiamOptions opt;
  };
  std::vector<Mode> modes;
  modes.push_back({"default", {}});
  modes.push_back({"serial", {}});
  modes.back().opt.parallel = false;
  modes.push_back({"batch4", {}});
  modes.back().opt.candidate_batch = 4;
  modes.push_back({"no-winnow", {}});
  modes.back().opt.use_winnow = false;
  modes.push_back({"no-chain-no-eliminate", {}});
  modes.back().opt.use_chain = false;
  modes.back().opt.use_eliminate = false;
  modes.push_back({"random-scan", {}});
  modes.back().opt.randomize_scan = true;

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Csr g = make_erdos_renyi(220, 420, seed);
    const dist_t truth = apsp_diameter(g).diameter;
    for (const Mode& m : modes) {
      const auto [r, log] = run_with_provenance(g, m.opt);
      EXPECT_EQ(r.diameter, truth) << m.name << " seed " << seed;
      expect_audit_clean(g, log, std::string(m.name) + " seed " +
                                     std::to_string(seed));
    }
  }
}

TEST(Provenance, ReorderedRunTranslatesBackToCallerIds) {
  // fdiam_diameter_reordered solves a permuted CSR; the collector must
  // come back translated into the caller's id space, so auditing against
  // the ORIGINAL graph succeeds.
  const Csr g = make_erdos_renyi(300, 600, 5);
  for (const ReorderMode mode :
       {ReorderMode::kDegree, ReorderMode::kBfs, ReorderMode::kRandom}) {
    obs::ProvenanceCollector collector;
    FDiamOptions opt;
    opt.provenance = &collector;
    const DiameterResult r = fdiam_diameter_reordered(g, mode, opt);
    EXPECT_EQ(r.diameter, apsp_diameter(g).diameter);
    expect_audit_clean(g, collector.log(),
                       std::string("reorder ") +
                           reorder_mode_name(mode));
  }
}

TEST(Provenance, CappedBoundForcesTimelineGrowthAndStaysAuditable) {
  // cap_initial_bound starves the 2-sweep bound, so the main loop must
  // raise it at least once — exercising the timeline, the capped flag,
  // and the auditor's relaxed initial-entry check.
  const Csr g = make_caterpillar(60, 1);
  FDiamOptions opt;
  opt.cap_initial_bound = 3;
  const auto [r, log] = run_with_provenance(g, opt);
  EXPECT_EQ(r.diameter, apsp_diameter(g).diameter);
  EXPECT_TRUE(log.capped);
  ASSERT_GE(log.timeline.size(), 2u);
  EXPECT_EQ(log.timeline.front().old_bound, -1);
  for (std::size_t i = 1; i < log.timeline.size(); ++i) {
    EXPECT_EQ(log.timeline[i].old_bound, log.timeline[i - 1].new_bound);
    EXPECT_GT(log.timeline[i].new_bound, log.timeline[i].old_bound);
    EXPECT_LE(log.timeline[i].alive, log.timeline[i - 1].alive);
  }
  EXPECT_EQ(log.timeline.back().new_bound, r.diameter);
  expect_audit_clean(g, log, "capped caterpillar");
}

TEST(Provenance, BinaryLogRoundtrips) {
  const Csr g = make_lollipop(20, 30);
  const auto [r, log] = run_with_provenance(g);
  std::ostringstream out;
  log.write(out);
  std::istringstream in(out.str());
  const obs::ProvenanceLog back = obs::ProvenanceLog::read(in);
  EXPECT_EQ(back.n, log.n);
  EXPECT_EQ(back.diameter, log.diameter);
  EXPECT_EQ(back.connected, log.connected);
  EXPECT_EQ(back.timed_out, log.timed_out);
  EXPECT_EQ(back.capped, log.capped);
  ASSERT_EQ(back.timeline.size(), log.timeline.size());
  for (std::size_t i = 0; i < log.timeline.size(); ++i) {
    EXPECT_EQ(back.timeline[i].round, log.timeline[i].round);
    EXPECT_EQ(back.timeline[i].old_bound, log.timeline[i].old_bound);
    EXPECT_EQ(back.timeline[i].new_bound, log.timeline[i].new_bound);
    EXPECT_EQ(back.timeline[i].witness, log.timeline[i].witness);
    EXPECT_EQ(back.timeline[i].alive, log.timeline[i].alive);
  }
  ASSERT_EQ(back.records.size(), log.records.size());
  for (std::size_t v = 0; v < log.records.size(); ++v) {
    EXPECT_EQ(back.records[v].stage, log.records[v].stage);
    EXPECT_EQ(back.records[v].round, log.records[v].round);
    EXPECT_EQ(back.records[v].anchor, log.records[v].anchor);
    EXPECT_EQ(back.records[v].bound, log.records[v].bound);
    EXPECT_EQ(back.records[v].value, log.records[v].value);
  }
  expect_audit_clean(g, back, "roundtripped lollipop");
}

/// Expect read() to throw a runtime_error whose message contains `needle`.
void expect_read_fails(const std::string& bytes, const std::string& needle) {
  std::istringstream in(bytes);
  try {
    obs::ProvenanceLog::read(in);
    FAIL() << "expected a parse failure mentioning \"" << needle << "\"";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(Provenance, CorruptedLogsFailWithPreciseMessages) {
  const Csr g = make_path(12);
  const auto [r, log] = run_with_provenance(g);
  std::ostringstream out;
  log.write(out);
  const std::string good = out.str();

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_read_fails(bad_magic, "bad magic");

  std::string bad_version = good;
  bad_version[4] = 9;  // little-endian version word
  expect_read_fails(bad_version, "version 9 unsupported");

  expect_read_fails(good.substr(0, good.size() / 2), "truncated");

  std::string bad_stage = good;
  // Last record's stage byte: records are 17 bytes (stage u8, round u32,
  // anchor u32, bound i32, value i32), written last.
  bad_stage[bad_stage.size() - 17] = static_cast<char>(200);
  expect_read_fails(bad_stage, "stage tag 200");

  expect_read_fails(good + "x", "trailing bytes");
}

TEST(Provenance, AuditorDetectsDoctoredRecords) {
  // The auditor's point is refusing to rubber-stamp: a log whose records
  // no longer match the graph must fail with named violations.
  const Csr g = make_caterpillar(30, 2);
  const auto [r, log] = run_with_provenance(g);
  expect_audit_clean(g, log, "pristine caterpillar");

  obs::ProvenanceLog forged = log;
  forged.records[5] = obs::VertexRecord{};  // back to kActive
  obs::AuditResult res = obs::audit_provenance(g, forged, {});
  EXPECT_FALSE(res.ok);

  forged = log;
  forged.diameter += 1;
  res = obs::audit_provenance(g, forged, {});
  EXPECT_FALSE(res.ok);

  // Error-list truncation keeps huge failures readable.
  forged = log;
  for (auto& rec : forged.records) rec = obs::VertexRecord{};
  obs::AuditOptions opt;
  opt.max_errors = 3;
  res = obs::audit_provenance(g, forged, opt);
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.errors.size(), 4u);  // 3 + the "... and N more" marker
  EXPECT_NE(res.errors.back().find("more violation"), std::string::npos);
}

TEST(Provenance, JsonBlockDiagnostics) {
  const Csr g = make_caterpillar(25, 1);
  const auto [r, log] = run_with_provenance(g);
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.key("provenance").begin_object();
    obs::write_provenance_fields(w, log);
    w.end_object();
    w.end_object();
  }
  const std::string report = os.str();
  EXPECT_EQ(obs::diagnose_provenance_block(report), std::nullopt);
  // Absence of the block is not an error — provenance is opt-in.
  EXPECT_EQ(obs::diagnose_provenance_block("{\"schema\":\"x\"}"),
            std::nullopt);

  auto doctored = [&](const std::string& from, const std::string& to) {
    std::string t = report;
    const auto pos = t.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    if (pos != std::string::npos) t.replace(pos, from.size(), to);
    return obs::diagnose_provenance_block(t);
  };

  const auto bad_schema =
      doctored("fdiam.provenance/v1", "fdiam.provenance/v9");
  ASSERT_TRUE(bad_schema.has_value());
  EXPECT_NE(bad_schema->find("schema"), std::string::npos);

  const auto bad_stage = doctored("\"chain_tail\"", "\"chain_tale\"");
  ASSERT_TRUE(bad_stage.has_value());
  EXPECT_NE(bad_stage->find("stage"), std::string::npos);
}

TEST(Provenance, StageNamesRoundtripTheClosedEnum) {
  for (std::size_t i = 0; i < obs::kProvStageCount; ++i) {
    const auto s = static_cast<obs::ProvStage>(i);
    const auto back = obs::prov_stage_from_name(obs::prov_stage_name(s));
    ASSERT_TRUE(back.has_value()) << obs::prov_stage_name(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_EQ(obs::prov_stage_from_name("not_a_stage"), std::nullopt);
}

TEST(Heartbeat, ForcedBeatAndSnapshotWriteProgressLines) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::ProgressHeartbeat hb(1e-9, /*force=*/true, f);
  EXPECT_TRUE(hb.periodic_enabled());
  // The clock gate only checks time every 256 calls.
  bool fired = false;
  for (int i = 0; i < 512 && !fired; ++i) fired = hb.due();
  EXPECT_TRUE(fired);
  hb.beat(50, 100, 7, 3, 2.0);

  obs::ProgressHeartbeat::request_snapshot();
  EXPECT_TRUE(hb.due());  // snapshot fires on the very next call
  hb.beat(10, 100, 7, 3, 2.0);

  std::rewind(f);
  char buf[4096] = {};
  const std::size_t got = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  const std::string text(buf, got);
  EXPECT_NE(text.find("heartbeat: alive 50/100, bound 7"), std::string::npos)
      << text;
  EXPECT_NE(text.find("snapshot: alive 10/100"), std::string::npos) << text;
  EXPECT_NE(text.find("ETA"), std::string::npos) << text;
}

TEST(Heartbeat, DisabledWithoutForceOnNonTty) {
  // Unit tests run with stderr redirected/piped; periodic beats must be
  // off, but an explicit snapshot request still fires.
  if (obs::stderr_is_tty()) GTEST_SKIP() << "stderr is a TTY here";
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::ProgressHeartbeat hb(1e-9, /*force=*/false, f);
  EXPECT_FALSE(hb.periodic_enabled());
  bool fired = false;
  for (int i = 0; i < 512 && !fired; ++i) fired = hb.due();
  EXPECT_FALSE(fired);
  obs::ProgressHeartbeat::request_snapshot();
  EXPECT_TRUE(hb.due());
  std::fclose(f);
}

TEST(Heartbeat, ZeroIntervalNeverBeatsPeriodically) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::ProgressHeartbeat hb(0.0, /*force=*/true, f);
  for (int i = 0; i < 1024; ++i) EXPECT_FALSE(hb.due());
  std::fclose(f);
}

TEST(Provenance, CollectorReuseAcrossRunsResets) {
  obs::ProvenanceCollector collector;
  FDiamOptions opt;
  opt.provenance = &collector;
  const Csr small = make_path(10);
  const Csr big = make_caterpillar(30, 1);
  (void)fdiam_diameter(big, opt);
  (void)fdiam_diameter(small, opt);
  EXPECT_EQ(collector.log().n, small.num_vertices());
  EXPECT_EQ(collector.log().records.size(), small.num_vertices());
  expect_audit_clean(small, collector.log(), "reused collector");
}

}  // namespace
}  // namespace fdiam
