// Tests for the BFS worklist, focused on the contention-free append path:
// Frontier::Local staging chunks must publish exactly the pushed multiset
// under concurrent producers, reserve() must hand out disjoint ranges, and
// the single-threaded Local must preserve push order (the two-sweep reads
// last_frontier()[0], so single-thread frontier order is load-bearing).
//
// The concurrent cases drive the protocol with std::thread rather than
// OpenMP: TSan intercepts pthread create/join but cannot see through GCC
// libgomp's futex-based barriers, so only the std::thread form gives the
// TSan preset (`ctest --preset tsan`) real race-detection power. One
// OpenMP-shaped test keeps the exact engine protocol (parallel region,
// nowait loop, destructor flush before the closing barrier) covered in
// the regular build.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "bfs/bitmap.hpp"
#include "bfs/frontier.hpp"

namespace fdiam {
namespace {

constexpr int kThreads = 8;

void run_threads(int count, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (int t = 0; t < count; ++t) threads.emplace_back(body, t);
  for (auto& th : threads) th.join();
}

TEST(Frontier, LocalPublishesEverythingOnDestruction) {
  constexpr vid_t kN = 5000;  // not a multiple of kChunk: partial tail flush
  Frontier f(kN);
  {
    Frontier::Local local(f);
    for (vid_t v = 0; v < kN; ++v) local.push(v);
  }
  ASSERT_EQ(f.size(), kN);
}

TEST(Frontier, LocalPreservesSingleThreadPushOrder) {
  constexpr vid_t kN = 3 * Frontier::Local::kChunk + 17;
  Frontier f(kN);
  {
    Frontier::Local local(f);
    for (vid_t v = 0; v < kN; ++v) local.push(kN - 1 - v);
  }
  const auto view = f.view();
  ASSERT_EQ(view.size(), kN);
  for (vid_t i = 0; i < kN; ++i) EXPECT_EQ(view[i], kN - 1 - i);
}

TEST(Frontier, ExplicitFlushIsIdempotent) {
  Frontier f(100);
  Frontier::Local local(f);
  local.push(7);
  local.flush();
  local.flush();  // empty staging buffer: no-op
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], 7u);
}

TEST(Frontier, ConcurrentLocalsPublishExactMultiset) {
  constexpr vid_t kN = 100000;
  Frontier f(kN);
  run_threads(kThreads, [&](int t) {
    Frontier::Local local(f);
    for (vid_t v = t; v < kN; v += kThreads) local.push(v);
  });  // join publishes the flushed writes, like the engines' barrier
  ASSERT_EQ(f.size(), kN);
  std::vector<vid_t> got(f.view().begin(), f.view().end());
  std::sort(got.begin(), got.end());
  for (vid_t v = 0; v < kN; ++v) ASSERT_EQ(got[v], v) << "lost or duplicated";
}

TEST(Frontier, MixedLocalAndAtomicProducers) {
  constexpr vid_t kN = 40000;
  Frontier f(kN);
  run_threads(kThreads, [&](int t) {
    Frontier::Local local(f);
    for (vid_t v = t; v < kN; v += kThreads) {
      if (v % 3 == 0) {
        f.push_atomic(v);  // cold path: interleaves with chunked flushes
      } else {
        local.push(v);
      }
    }
  });
  ASSERT_EQ(f.size(), kN);
  std::vector<vid_t> got(f.view().begin(), f.view().end());
  std::sort(got.begin(), got.end());
  for (vid_t v = 0; v < kN; ++v) ASSERT_EQ(got[v], v);
}

TEST(Frontier, ReserveHandsOutDisjointRanges) {
  constexpr std::size_t kPerThread = 1000;
  Frontier f(kThreads * kPerThread);
  // Each thread fills its reserved block with its own id; afterwards every
  // slot must be owned by exactly one thread's block.
  std::vector<vid_t> slot_owner(kThreads * kPerThread);
  run_threads(kThreads, [&](int t) {
    for (int round = 0; round < 10; ++round) {
      const std::size_t base = f.reserve(kPerThread / 10);
      for (std::size_t i = 0; i < kPerThread / 10; ++i) {
        slot_owner[base + i] = static_cast<vid_t>(t);
      }
    }
  });
  ASSERT_EQ(f.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<std::size_t> per_owner(kThreads, 0);
  for (const vid_t owner : slot_owner) ++per_owner[owner];
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_owner[t], kPerThread) << "thread " << t;
  }
}

// The engines' actual protocol shape: parallel region, nowait worksharing
// loop, Local destructor flush before the region-end barrier. Under the
// TSan preset this runs with OMP_NUM_THREADS=1 (see tests/CMakeLists.txt);
// the std::thread tests above carry the race detection.
TEST(Frontier, OpenMpRegionProtocolPublishesExactMultiset) {
  constexpr vid_t kN = 100000;
  Frontier f(kN);
#pragma omp parallel
  {
    Frontier::Local local(f);
#pragma omp for schedule(dynamic, 64) nowait
    for (vid_t v = 0; v < kN; ++v) local.push(v);
  }
  ASSERT_EQ(f.size(), kN);
  std::vector<vid_t> got(f.view().begin(), f.view().end());
  std::sort(got.begin(), got.end());
  for (vid_t v = 0; v < kN; ++v) ASSERT_EQ(got[v], v);
}

TEST(Bitmap, SetTestAndCount) {
  Bitmap bm;
  bm.resize(200);
  EXPECT_EQ(bm.count(), 0u);
  for (vid_t v = 0; v < 200; v += 7) bm.set(v);
  for (vid_t v = 0; v < 200; ++v) EXPECT_EQ(bm.test(v), v % 7 == 0);
  EXPECT_EQ(bm.count(), 29u);  // ceil(200 / 7) ids: 0, 7, ..., 196
  bm.clear();
  EXPECT_EQ(bm.count(), 0u);
}

TEST(Bitmap, ValidMaskCoversExactlyTheTail) {
  Bitmap bm;
  bm.resize(70);  // 2 words, 6 valid bits in the last one
  EXPECT_EQ(bm.valid_mask(0), ~std::uint64_t{0});
  EXPECT_EQ(bm.valid_mask(1), (std::uint64_t{1} << 6) - 1);
}

TEST(Bitmap, ConcurrentSetAtomicIsExact) {
  constexpr vid_t kN = 64 * 1024 + 13;
  Bitmap bm;
  bm.resize(kN);
  // Threads interleave within the same words (stride = thread count), the
  // worst case for the fetch_or path.
  run_threads(kThreads, [&](int t) {
    for (vid_t v = t; v < kN; v += kThreads) {
      if (v % 2 == 0) bm.set_atomic(v);
    }
  });
  std::size_t expected = 0;
  for (vid_t v = 0; v < kN; ++v) {
    ASSERT_EQ(bm.test(v), v % 2 == 0);
    expected += v % 2 == 0;
  }
  EXPECT_EQ(bm.count(), expected);
}

}  // namespace
}  // namespace fdiam
