// Tests for the synthetic graph generators: structural invariants, exact
// diameters of the deterministic shapes, and statistical sanity of the
// random families. Parameterized sweeps double as property tests.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"
#include "util/rng.hpp"

namespace fdiam {
namespace {

TEST(Grid, SizeDegreesAndDiameter) {
  const Csr g = make_grid(6, 4);
  EXPECT_EQ(g.num_vertices(), 24u);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(apsp_diameter(g).diameter, 6 + 4 - 2);
}

TEST(Grid, OneByOneIsSingleVertex) {
  const Csr g = make_grid(1, 1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(Grid, LineGridIsPath) {
  const Csr g = make_grid(10, 1);
  EXPECT_EQ(apsp_diameter(g).diameter, 9);
}

TEST(SpecialShapes, PathDiameter) {
  EXPECT_EQ(apsp_diameter(make_path(17)).diameter, 16);
}

TEST(SpecialShapes, CycleDiameter) {
  EXPECT_EQ(apsp_diameter(make_cycle(10)).diameter, 5);
  EXPECT_EQ(apsp_diameter(make_cycle(11)).diameter, 5);
}

TEST(SpecialShapes, StarDiameter) {
  const Csr g = make_star(25);
  EXPECT_EQ(g.num_vertices(), 26u);
  EXPECT_EQ(apsp_diameter(g).diameter, 2);
  EXPECT_EQ(g.max_degree_vertex(), 0u);
}

TEST(SpecialShapes, CompleteDiameter) {
  EXPECT_EQ(apsp_diameter(make_complete(12)).diameter, 1);
  EXPECT_EQ(make_complete(12).num_edges(), 66u);
}

TEST(SpecialShapes, BalancedTreeDiameter) {
  const Csr g = make_balanced_tree(2, 4);
  EXPECT_EQ(g.num_vertices(), 31u);
  EXPECT_EQ(apsp_diameter(g).diameter, 8);
}

TEST(SpecialShapes, CaterpillarDiameter) {
  // Leg - spine(6 edges along 7 spine vertices... spine=7) - leg.
  const Csr g = make_caterpillar(7, 1);
  EXPECT_EQ(apsp_diameter(g).diameter, 6 + 2);
}

TEST(SpecialShapes, LollipopDiameter) {
  const Csr g = make_lollipop(8, 5);
  // Across the clique (1) plus the tail (5).
  EXPECT_EQ(apsp_diameter(g).diameter, 6);
}

TEST(SpecialShapes, BarbellDiameter) {
  const Csr g = make_barbell(6, 4);
  // clique hop + bridge path (5 edges through 4 bridge vertices) + hop.
  EXPECT_EQ(apsp_diameter(g).diameter, 1 + 5 + 1);
}

TEST(SpecialShapes, DisjointUnionKeepsBothParts) {
  const Csr g = disjoint_union(make_path(5), make_star(3));
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_TRUE(g.validate());
  const BaselineResult r = apsp_diameter(g);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.diameter, 4);  // path part dominates
}

TEST(BarabasiAlbert, ConnectedAndPowerLawish) {
  const Csr g = make_barabasi_albert(2000, 3.0, 11);
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(connected_components(g).connected());
  // Preferential attachment produces a pronounced hub.
  EXPECT_GT(g.max_degree(), 40u);
}

TEST(BarabasiAlbert, FractionalAttachment) {
  const Csr g = make_barabasi_albert(4000, 1.5, 3);
  const GraphStats s = compute_stats(g);
  EXPECT_NEAR(s.avg_degree, 3.0, 0.35);  // 2 * 1.5 arcs per vertex
}

TEST(BarabasiAlbert, Deterministic) {
  const Csr a = make_barabasi_albert(500, 2.0, 9);
  const Csr b = make_barabasi_albert(500, 2.0, 9);
  EXPECT_EQ(a.num_arcs(), b.num_arcs());
  EXPECT_TRUE(std::ranges::equal(a.raw_neighbors(), b.raw_neighbors()));
}

TEST(ErdosRenyi, EdgeCountApproximatelyRequested) {
  const Csr g = make_erdos_renyi(1000, 5000, 17);
  EXPECT_TRUE(g.validate());
  EXPECT_GT(g.num_edges(), 4800u);
  EXPECT_LE(g.num_edges(), 5000u);
}

TEST(ErdosRenyi, DenseRequestSaturates) {
  const Csr g = make_erdos_renyi(10, 1000, 3);
  EXPECT_LE(g.num_edges(), 45u);  // complete graph bound
  EXPECT_GT(g.num_edges(), 30u);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  const Csr g = make_watts_strogatz(50, 2, 0.0, 1);
  EXPECT_TRUE(g.validate());
  for (vid_t v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4u);
  // Ring lattice with k=2: diameter = ceil(n/2) / k rounded up = 13.
  EXPECT_EQ(apsp_diameter(g).diameter, 13);
}

TEST(WattsStrogatz, RewiringShrinksDiameter) {
  const Csr lattice = make_watts_strogatz(400, 2, 0.0, 2);
  const Csr small_world = make_watts_strogatz(400, 2, 0.2, 2);
  EXPECT_LT(apsp_diameter(small_world).diameter,
            apsp_diameter(lattice).diameter);
}

TEST(Rmat, SizeAndSkew) {
  const Csr g = make_rmat(12, 8.0, 0.45, 0.15, 0.15, 21);
  EXPECT_EQ(g.num_vertices(), 4096u);
  EXPECT_TRUE(g.validate());
  const GraphStats s = compute_stats(g);
  EXPECT_GT(static_cast<double>(s.max_degree),
            5.0 * s.avg_degree);  // heavy-tailed degrees
}

TEST(Kronecker, HasIsolatedVerticesLikeGraph500) {
  // The paper's kron_g500-logn21 input is 26% degree-0 (Table 4); the
  // generator reproduces a substantial isolated fraction.
  const Csr g = make_kronecker(13, 16.0, 33);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.degree0, g.num_vertices() / 20);
}

TEST(RandomGeometric, RadiusControlsConnectivity) {
  const Csr sparse = make_random_geometric(400, 0.01, 5);
  const Csr dense = make_random_geometric(400, 0.2, 5);
  EXPECT_TRUE(dense.validate());
  EXPECT_GT(connected_components(sparse).count(),
            connected_components(dense).count());
}

TEST(RandomGeometric, EdgesRespectRadius) {
  // All pairs within radius must be present: verify via a brute-force
  // recomputation with the identical RNG stream.
  const Csr g = make_random_geometric(300, 0.1, 77);
  Rng rng(77);
  std::vector<double> xs(300), ys(300);
  for (vid_t v = 0; v < 300; ++v) {
    xs[v] = rng.uniform();
    ys[v] = rng.uniform();
  }
  eid_t expected = 0;
  for (vid_t u = 0; u < 300; ++u) {
    for (vid_t v = u + 1; v < 300; ++v) {
      const double dx = xs[u] - xs[v], dy = ys[u] - ys[v];
      if (dx * dx + dy * dy <= 0.01) {
        ++expected;
        EXPECT_TRUE(g.has_edge(u, v)) << u << "," << v;
      }
    }
  }
  EXPECT_EQ(g.num_edges(), expected);
}

TEST(Road, ConnectedSparseAndChainRich) {
  RoadOptions opt;
  opt.grid_width = 40;
  opt.grid_height = 40;
  const Csr g = make_road_network(opt, 13);
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(connected_components(g).connected());
  const GraphStats s = compute_stats(g);
  EXPECT_LT(s.avg_degree, 4.0);   // road maps are very sparse
  EXPECT_LE(s.max_degree, 8u);
  EXPECT_GT(s.degree2, s.vertices / 10);  // polyline chain vertices
  EXPECT_GT(s.degree1, 0u);               // dead ends
}

TEST(Road, DiameterGrowsWithGridSide) {
  RoadOptions small_opt, large_opt;
  small_opt.grid_width = small_opt.grid_height = 16;
  large_opt.grid_width = large_opt.grid_height = 48;
  const auto d_small = apsp_diameter(make_road_network(small_opt, 4));
  const auto d_large = apsp_diameter(make_road_network(large_opt, 4));
  EXPECT_GT(d_large.diameter, 2 * d_small.diameter);
}

TEST(Tendrils, StretchTheDiameter) {
  const Csr core = make_barabasi_albert(2000, 4.0, 5);
  TendrilOptions opt;
  opt.per_vertex = 0.02;
  opt.max_len = 12;
  const Csr g = attach_tendrils(core, opt, 9);
  EXPECT_TRUE(g.validate());
  EXPECT_GT(g.num_vertices(), core.num_vertices());
  const dist_t core_diam = apsp_diameter(core).diameter;
  const dist_t full_diam = apsp_diameter(g).diameter;
  EXPECT_GT(full_diam, core_diam + 8);  // periphery dominates the diameter
}

TEST(Tendrils, PreserveTheCoreEdges) {
  const Csr core = make_cycle(50);
  TendrilOptions opt;
  opt.per_vertex = 0.1;
  const Csr g = attach_tendrils(core, opt, 3);
  for (vid_t v = 0; v < 50; ++v) {
    for (const vid_t w : core.neighbors(v)) EXPECT_TRUE(g.has_edge(v, w));
  }
}

TEST(Tendrils, KeepConnectedCoresConnected) {
  const Csr core = make_barabasi_albert(500, 2.0, 7);
  TendrilOptions opt;
  opt.per_vertex = 0.05;
  opt.max_len = 6;
  const Csr g = attach_tendrils(core, opt, 11);
  EXPECT_TRUE(connected_components(g).connected());
}

TEST(Tendrils, AddDegree1Periphery) {
  const Csr core = make_complete(30);  // no degree-1 vertices at all
  TendrilOptions opt;
  opt.per_vertex = 0.5;
  opt.max_len = 4;
  const Csr g = attach_tendrils(core, opt, 2);
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.degree1, 0u);  // tendril tips and leaves
}

// Determinism sweep across every random family.
struct GenCase {
  const char* name;
  Csr (*build)(std::uint64_t seed);
};

class GeneratorDeterminism : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorDeterminism, SameSeedSameGraph) {
  const auto& param = GetParam();
  const Csr a = param.build(123);
  const Csr b = param.build(123);
  EXPECT_TRUE(std::ranges::equal(a.offsets(), b.offsets()));
  EXPECT_TRUE(std::ranges::equal(a.raw_neighbors(), b.raw_neighbors()));
  const Csr c = param.build(124);
  EXPECT_FALSE(std::ranges::equal(a.raw_neighbors(), c.raw_neighbors()));
}

INSTANTIATE_TEST_SUITE_P(
    AllRandomFamilies, GeneratorDeterminism,
    ::testing::Values(
        GenCase{"erdos_renyi",
                [](std::uint64_t s) { return make_erdos_renyi(500, 1500, s); }},
        GenCase{"barabasi_albert",
                [](std::uint64_t s) {
                  return make_barabasi_albert(500, 2.0, s);
                }},
        GenCase{"watts_strogatz",
                [](std::uint64_t s) {
                  return make_watts_strogatz(500, 3, 0.1, s);
                }},
        GenCase{"rmat",
                [](std::uint64_t s) {
                  return make_rmat(9, 8.0, 0.45, 0.15, 0.15, s);
                }},
        GenCase{"geometric",
                [](std::uint64_t s) {
                  return make_random_geometric(500, 0.08, s);
                }},
        GenCase{"delaunay",
                [](std::uint64_t s) { return make_delaunay(400, s); }},
        GenCase{"road",
                [](std::uint64_t s) {
                  RoadOptions opt;
                  opt.grid_width = opt.grid_height = 20;
                  return make_road_network(opt, s);
                }}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace fdiam
