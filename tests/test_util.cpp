// Tests for the utility layer: RNG determinism and distribution sanity,
// CLI parsing, and table formatting.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fdiam {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(SplitMix, KnownFirstValueIsStable) {
  SplitMix64 sm(0);
  const auto first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

TEST(Cli, ParsesOptionsFlagsAndPositionals) {
  Cli cli;
  cli.add_option("graph", "input graph");
  cli.add_option("scale", "size multiplier", "1.0");
  cli.add_flag("verbose", "talk more");
  const char* argv[] = {"prog",    "--graph", "g.mtx", "--verbose",
                        "--scale", "2.5",     "pos1"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(cli.get("graph"), "g.mtx");
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 2.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, EqualsSyntax) {
  Cli cli;
  cli.add_option("threads", "thread count");
  const char* argv[] = {"prog", "--threads=8"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("threads", 1), 8);
}

TEST(Cli, UnknownOptionFails) {
  Cli cli;
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("nope"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  Cli cli;
  cli.add_option("graph", "input");
  const char* argv[] = {"prog", "--graph"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpRequested) {
  Cli cli;
  cli.add_option("x", "an option");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage("prog").find("--x"), std::string::npos);
}

TEST(Cli, DefaultsWhenAbsent) {
  Cli cli;
  cli.add_option("n", "count", "10");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n", 10), 10);
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, IntRejectsGarbageInsteadOfCoercing) {
  // std::strtoll used to stop at the first bad character, silently turning
  // "12x" into 12 and "banana" into 0. Every partial or out-of-range value
  // must now throw, naming the flag.
  Cli cli;
  cli.add_option("n", "count");
  const char* argv[] = {"prog", "--n", "12x"};
  ASSERT_TRUE(cli.parse(3, argv));
  try {
    (void)cli.get_int("n", 0);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos);
  }
}

TEST(Cli, IntRejectsFloatsEmptyAndOverflow) {
  Cli cli;
  cli.add_option("n", "count");
  for (const char* bad : {"1e9", "3.5", "", " 7", "99999999999999999999"}) {
    const char* argv[] = {"prog", "--n", bad};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_THROW((void)cli.get_int("n", 0), std::runtime_error)
        << "value '" << bad << "' should not parse as an int";
  }
  // negatives and an explicit plus sign are legitimate integers
  for (const char* good : {"-42", "+7", "0"}) {
    const char* argv[] = {"prog", "--n", good};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_NO_THROW((void)cli.get_int("n", 0)) << good;
  }
}

TEST(Cli, DoubleRejectsTrailingGarbage) {
  Cli cli;
  cli.add_option("x", "scale");
  for (const char* bad : {"2.5abc", "nan(", ""}) {
    const char* argv[] = {"prog", "--x", bad};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_THROW((void)cli.get_double("x", 0.0), std::runtime_error)
        << "value '" << bad << "'";
  }
  const char* argv[] = {"prog", "--x", "1e-3"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 1e-3);
}

TEST(Cli, BoolAcceptsSpellingsAndRejectsTheRest) {
  Cli cli;
  cli.add_option("b", "toggle");
  const struct {
    const char* text;
    bool value;
  } good[] = {{"true", true}, {"false", false}, {"1", true},  {"0", false},
              {"yes", true},  {"no", false},    {"on", true}, {"off", false}};
  for (const auto& [text, value] : good) {
    const char* argv[] = {"prog", "--b", text};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_EQ(cli.get_bool("b"), value) << text;
  }
  for (const char* bad : {"banana", "2", "TRUEish", ""}) {
    const char* argv[] = {"prog", "--b", bad};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_THROW((void)cli.get_bool("b"), std::runtime_error)
        << "value '" << bad << "'";
  }
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"x,y", "plain"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_percent(0.5, 1), "50.0%");
  EXPECT_EQ(Table::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(Table::fmt_count(999), "999");
  EXPECT_EQ(Table::fmt_count(0), "0");
  EXPECT_EQ(Table::fmt_count(1000), "1,000");
}

TEST(Timer, MonotonicAndAccumulates) {
  Timer t;
  AccumTimer acc;
  acc.start();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  acc.stop();
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(acc.seconds(), 0.0);
  EXPECT_GE(t.seconds(), acc.seconds() * 0.5);
}

}  // namespace
}  // namespace fdiam
