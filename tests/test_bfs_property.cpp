// Property test over the whole BFS engine zoo (ISSUE 3): serial, parallel
// top-down-only, forced bottom-up, hybrid at several switch thresholds,
// and bit-parallel MS-BFS must all report identical distances and
// eccentricities on seeded grid / RMAT / tree graphs — and the same must
// hold after each --reorder relabeling, whose permutation must also map
// distances through unchanged. This is the bit-identical-results guarantee
// the bench_compare exact-metric check relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bfs/bfs.hpp"
#include "bfs/msbfs.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/reorder.hpp"

namespace fdiam {
namespace {

struct NamedConfig {
  const char* name;
  BfsConfig config;
};

// Every execution strategy the engine offers. Threshold 0.0 forces the
// bottom-up step from level 1 on; 1.0 never triggers it; the middle values
// exercise both conversion directions on the same traversal.
const std::vector<NamedConfig>& engine_configs() {
  static const std::vector<NamedConfig> configs = {
      {"serial_topdown", {false, false, 0.1}},
      {"serial_hybrid", {false, true, 0.1}},
      {"parallel_topdown", {true, false, 0.1}},
      {"forced_bottomup", {true, true, 0.0}},
      {"hybrid_t005", {true, true, 0.05}},
      {"hybrid_t01", {true, true, 0.1}},
      {"hybrid_t05", {true, true, 0.5}},
  };
  return configs;
}

std::vector<vid_t> sample_sources(const Csr& g) {
  std::vector<vid_t> sources;
  const vid_t stride = std::max<vid_t>(1, g.num_vertices() / 12);
  for (vid_t s = 0; s < g.num_vertices(); s += stride) sources.push_back(s);
  return sources;
}

// The core property: on `g`, every engine mode and MS-BFS agree with the
// serial reference on distances and eccentricities for sampled sources.
void expect_all_strategies_agree(const Csr& g, const std::string& tag) {
  const std::vector<vid_t> sources = sample_sources(g);

  std::vector<std::vector<dist_t>> ref_dist(sources.size());
  std::vector<dist_t> ref_ecc(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    ref_ecc[i] = bfs_distances_serial(g, sources[i], ref_dist[i]);
  }

  for (const auto& [name, config] : engine_configs()) {
    BfsEngine engine(g, config);
    std::vector<dist_t> dist;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const dist_t ecc = engine.distances(sources[i], dist);
      ASSERT_EQ(ecc, ref_ecc[i]) << tag << " / " << name << " / source "
                                 << sources[i];
      ASSERT_EQ(dist, ref_dist[i]) << tag << " / " << name << " / source "
                                   << sources[i];
      ASSERT_EQ(engine.eccentricity(sources[i]), ref_ecc[i])
          << tag << " / " << name << " / source " << sources[i];
    }
  }

  for (const bool parallel : {false, true}) {
    const std::vector<dist_t> ecc = msbfs_eccentricities(g, sources, parallel);
    ASSERT_EQ(ecc.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      ASSERT_EQ(ecc[i], ref_ecc[i])
          << tag << " / msbfs(parallel=" << parallel << ") / source "
          << sources[i];
    }
  }
}

struct NamedGraph {
  std::string name;
  Csr graph;
};

std::vector<NamedGraph> property_graphs() {
  std::vector<NamedGraph> graphs;
  // The three topology regimes of the bench suite: mesh, power-law, tree.
  graphs.push_back({"grid_40x30", make_grid(40, 30)});
  graphs.push_back({"rmat_s9", make_rmat(9, 8.0, 0.57, 0.19, 0.19, 7)});
  graphs.push_back({"random_tree_2k", make_random_tree(2000, 11)});
  return graphs;
}

TEST(BfsProperty, AllStrategiesAgreeOnNaturalOrder) {
  for (const auto& [name, g] : property_graphs()) {
    expect_all_strategies_agree(g, name);
  }
}

TEST(BfsProperty, AllStrategiesAgreeAfterEveryReorder) {
  const ReorderMode modes[] = {ReorderMode::kNone, ReorderMode::kDegree,
                               ReorderMode::kBfs, ReorderMode::kRandom};
  for (const auto& [name, g] : property_graphs()) {
    for (const ReorderMode mode : modes) {
      const Csr permuted = apply_permutation(g, make_order(g, mode, 5));
      expect_all_strategies_agree(
          permuted, name + "+" + reorder_mode_name(mode));
    }
  }
}

TEST(BfsProperty, ReorderingMapsDistancesThroughThePermutation) {
  for (const auto& [name, g] : property_graphs()) {
    const Permutation new_id = make_order(g, ReorderMode::kBfs, 5);
    const Csr permuted = apply_permutation(g, new_id);
    std::vector<dist_t> dist_orig, dist_perm;
    for (const vid_t s : sample_sources(g)) {
      const dist_t ecc_orig = bfs_distances_serial(g, s, dist_orig);
      const dist_t ecc_perm =
          bfs_distances_serial(permuted, new_id[s], dist_perm);
      ASSERT_EQ(ecc_orig, ecc_perm) << name << " / source " << s;
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(dist_orig[v], dist_perm[new_id[v]])
            << name << " / source " << s << " / vertex " << v;
      }
    }
  }
}

TEST(BfsProperty, SolverDiameterIsInvariantUnderReorderModes) {
  const ReorderMode modes[] = {ReorderMode::kNone, ReorderMode::kDegree,
                               ReorderMode::kBfs, ReorderMode::kRandom};
  for (const auto& [name, g] : property_graphs()) {
    const DiameterResult ref = fdiam_diameter(g);
    std::vector<dist_t> dist;
    for (const ReorderMode mode : modes) {
      const DiameterResult r = fdiam_diameter_reordered(g, mode);
      EXPECT_EQ(r.diameter, ref.diameter)
          << name << " / " << reorder_mode_name(mode);
      EXPECT_EQ(r.connected, ref.connected);
      // The witness is reported in ORIGINAL ids: its eccentricity on the
      // unpermuted graph must equal the diameter.
      ASSERT_LT(r.witness, g.num_vertices());
      EXPECT_EQ(bfs_distances_serial(g, r.witness, dist), ref.diameter)
          << name << " / " << reorder_mode_name(mode) << " / witness "
          << r.witness;
    }
  }
}

}  // namespace
}  // namespace fdiam
