// Tests for the reimplemented competitor algorithms: exactness against
// APSP, mutual agreement, disconnected handling, and budget behavior.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/baselines.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

struct BaselineCase {
  const char* name;
  BaselineResult (*run)(const Csr&, BaselineOptions);
};

class BaselineExactness : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineExactness, MatchesApspOnRandomGraphs) {
  const auto& param = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Csr g = make_erdos_renyi(200, 500, seed);
    const BaselineResult truth = apsp_diameter(g);
    const BaselineResult r = param.run(g, {});
    EXPECT_EQ(r.diameter, truth.diameter) << param.name << " seed " << seed;
    EXPECT_EQ(r.connected, truth.connected) << param.name;
    EXPECT_FALSE(r.timed_out);
  }
}

TEST_P(BaselineExactness, MatchesApspOnShapes) {
  const auto& param = GetParam();
  EXPECT_EQ(param.run(make_path(40), {}).diameter, 39);
  EXPECT_EQ(param.run(make_cycle(30), {}).diameter, 15);
  EXPECT_EQ(param.run(make_star(15), {}).diameter, 2);
  EXPECT_EQ(param.run(make_complete(10), {}).diameter, 1);
  EXPECT_EQ(param.run(make_grid(7, 11), {}).diameter, 16);
  EXPECT_EQ(param.run(make_balanced_tree(3, 4), {}).diameter, 8);
}

TEST_P(BaselineExactness, HandlesDisconnectedInputs) {
  const auto& param = GetParam();
  const Csr g = disjoint_union(make_path(25), make_cycle(12));
  const BaselineResult r = param.run(g, {});
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.diameter, 24);
}

TEST_P(BaselineExactness, EmptyAndTinyGraphs) {
  const auto& param = GetParam();
  EXPECT_EQ(param.run(Csr::from_edges(EdgeList{}), {}).diameter, 0);
  EdgeList one;
  one.ensure_vertices(1);
  EXPECT_EQ(param.run(Csr::from_edges(std::move(one)), {}).diameter, 0);
  EdgeList two;
  two.add(0, 1);
  EXPECT_EQ(param.run(Csr::from_edges(std::move(two)), {}).diameter, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineExactness,
    ::testing::Values(BaselineCase{"apsp", apsp_diameter},
                      BaselineCase{"ifub", ifub_diameter},
                      BaselineCase{"graph_diameter", graph_diameter},
                      BaselineCase{"korf", korf_diameter}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Apsp, ParallelMatchesSerial) {
  const Csr g = make_barabasi_albert(400, 2.0, 9);
  BaselineOptions par;
  par.parallel = true;
  EXPECT_EQ(apsp_diameter(g, par).diameter, apsp_diameter(g, {}).diameter);
}

TEST(Apsp, CountsOneBfsPerVertex) {
  const Csr g = make_grid(12, 12);
  EXPECT_EQ(apsp_diameter(g).bfs_calls, 144u);
}

TEST(Ifub, FewerBfsCallsThanApsp) {
  const Csr g = make_barabasi_albert(3000, 3.0, 4);
  const BaselineResult r = ifub_diameter(g);
  EXPECT_LT(r.bfs_calls, g.num_vertices() / 4);
}

TEST(Ifub, ParallelBfsVariantAgrees) {
  const Csr g = make_barabasi_albert(1500, 2.5, 6);
  BaselineOptions par;
  par.parallel = true;
  EXPECT_EQ(ifub_diameter(g, par).diameter, ifub_diameter(g, {}).diameter);
}

TEST(GraphDiameter, FewerBfsCallsThanApsp) {
  // The paper's Table 3 shows Graph-Diameter needing hundreds to
  // thousands of traversals (far more than iFUB/F-Diam but far fewer
  // than one per vertex); the reimplementation reproduces that shape.
  const Csr g = make_barabasi_albert(3000, 3.0, 4);
  const BaselineResult r = graph_diameter(g);
  EXPECT_LT(r.bfs_calls, g.num_vertices());
  EXPECT_GT(r.bfs_calls, 2u);
}

TEST(Korf, BfsCallsEqualVertexCount) {
  const Csr g = make_grid(10, 10);
  EXPECT_EQ(korf_diameter(g).bfs_calls, 100u);
}

TEST(Baselines, TimeBudgetAborts) {
  // A grid big enough that an exhaustive baseline cannot finish in ~0s.
  const Csr g = make_grid(150, 150);
  BaselineOptions opt;
  opt.time_budget_seconds = 1e-6;
  const BaselineResult r = apsp_diameter(g, opt);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LE(r.diameter, 298);
}

TEST(Baselines, MutualAgreementOnMidsizeInputs) {
  // The algorithms are independent implementations; agreement on larger
  // graphs (where APSP is too slow to include) is strong cross-evidence.
  const Csr g = make_rmat(12, 6.0, 0.5, 0.2, 0.2, 31);
  const BaselineResult a = ifub_diameter(g);
  const BaselineResult b = graph_diameter(g);
  const BaselineResult c = korf_diameter(g);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(b.diameter, c.diameter);
}

}  // namespace
}  // namespace fdiam
