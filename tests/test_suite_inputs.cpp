// Tests for the benchmark input suite: every analogue must build, be
// structurally valid, resemble its paper counterpart's topology class,
// and yield the same diameter from F-Diam and two independent baselines.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "gen/suite.hpp"
#include "graph/stats.hpp"

namespace fdiam {
namespace {

constexpr double kTinyScale = 0.02;  // a few thousand vertices per input

class SuiteInputs : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteInputs, BuildsAndValidates) {
  const Csr g = build_suite_input(GetParam(), kTinyScale);
  EXPECT_GT(g.num_vertices(), 100u);
  EXPECT_TRUE(g.validate());
}

TEST_P(SuiteInputs, FDiamAgreesWithIndependentBaselines) {
  const Csr g = build_suite_input(GetParam(), kTinyScale);
  const DiameterResult f = fdiam_diameter(g);
  const BaselineResult gd = graph_diameter(g);
  const BaselineResult ik = ifub_diameter(g);
  EXPECT_EQ(f.diameter, gd.diameter);
  EXPECT_EQ(f.diameter, ik.diameter);
  EXPECT_EQ(f.connected, gd.connected);
}

TEST_P(SuiteInputs, DeterministicAcrossBuilds) {
  const Csr a = build_suite_input(GetParam(), kTinyScale);
  const Csr b = build_suite_input(GetParam(), kTinyScale);
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_TRUE(std::ranges::equal(a.raw_neighbors(), b.raw_neighbors()));
}

INSTANTIATE_TEST_SUITE_P(All17, SuiteInputs,
                         ::testing::ValuesIn(suite_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(Suite, HasAll17PaperInputs) {
  EXPECT_EQ(input_suite().size(), 17u);
  EXPECT_EQ(suite_names().front(), "2d-2e20.sym");
  EXPECT_EQ(suite_names().back(), "USA-road-d.USA");
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(build_suite_input("no-such-graph"), std::invalid_argument);
}

TEST(Suite, ScaleGrowsTheInputs) {
  const Csr small = build_suite_input("rmat16.sym", 0.02);
  const Csr large = build_suite_input("rmat16.sym", 0.08);
  EXPECT_GT(large.num_vertices(), small.num_vertices());
}

TEST(Suite, TopologyClassesMatchThePaper) {
  // Grid analogue: constant degree 4-mesh.
  const GraphStats grid = compute_stats(build_suite_input("2d-2e20.sym", 0.05));
  EXPECT_EQ(grid.max_degree, 4u);

  // Road analogue: avg degree ~2-3, long chains.
  const GraphStats road =
      compute_stats(build_suite_input("USA-road-d.NY", 0.05));
  EXPECT_LT(road.avg_degree, 4.0);
  EXPECT_GT(road.degree2, 0u);

  // Kronecker analogue: substantial degree-0 fraction (paper: 26%).
  const GraphStats kron =
      compute_stats(build_suite_input("kron_g500-logn21", 0.05));
  EXPECT_GT(kron.degree0, kron.vertices / 25);

  // Power-law analogue: hub degree far above the average.
  const GraphStats skitter =
      compute_stats(build_suite_input("as-skitter", 0.05));
  EXPECT_GT(static_cast<double>(skitter.max_degree),
            20.0 * skitter.avg_degree);
}

}  // namespace
}  // namespace fdiam
