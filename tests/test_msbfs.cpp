// Tests for the bit-parallel multi-source BFS.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baselines/baselines.hpp"
#include "bfs/msbfs.hpp"
#include "core/eccentricity.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

TEST(MsBfs, SingleSourceMatchesScalarBfs) {
  const Csr g = make_grid(17, 13);
  for (const vid_t s : {vid_t{0}, vid_t{110}, vid_t{220}}) {
    const vid_t src[1] = {s};
    const auto ecc = msbfs_eccentricities(g, src);
    ASSERT_EQ(ecc.size(), 1u);
    EXPECT_EQ(ecc[0], eccentricity(g, s));
  }
}

TEST(MsBfs, FullBatchMatchesScalarBfs) {
  const Csr g = make_erdos_renyi(300, 900, 6);
  std::vector<vid_t> sources(64);
  std::iota(sources.begin(), sources.end(), 100);
  const auto batch = msbfs_eccentricities(g, sources);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(batch[i], eccentricity(g, sources[i])) << "source " << sources[i];
  }
}

TEST(MsBfs, MoreThan64SourcesSplitsIntoBatches) {
  const Csr g = make_barabasi_albert(400, 2.0, 3);
  std::vector<vid_t> sources(150);
  std::iota(sources.begin(), sources.end(), 0);
  const auto batch = msbfs_eccentricities(g, sources);
  ASSERT_EQ(batch.size(), 150u);
  for (std::size_t i = 0; i < sources.size(); i += 13) {
    EXPECT_EQ(batch[i], eccentricity(g, sources[i]));
  }
}

TEST(MsBfs, AllEccentricitiesMatchApspLoop) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Csr g = make_erdos_renyi(257, 600, seed);  // non-multiple of 64
    EXPECT_EQ(msbfs_all_eccentricities(g), all_eccentricities(g))
        << "seed " << seed;
  }
}

TEST(MsBfs, HandlesDisconnectedAndIsolated) {
  EdgeList e(70);
  for (vid_t v = 0; v + 1 < 40; ++v) e.add(v, v + 1);  // path on 0..39
  e.add(50, 51);
  const Csr g = Csr::from_edges(std::move(e));
  const auto ecc = msbfs_all_eccentricities(g);
  EXPECT_EQ(ecc[0], 39);
  EXPECT_EQ(ecc[20], 20);
  EXPECT_EQ(ecc[50], 1);
  EXPECT_EQ(ecc[69], 0);  // isolated
}

TEST(MsBfs, DiameterMatchesApsp) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_barabasi_albert(500, 1.5, seed);
    const BaselineResult truth = apsp_diameter(g);
    const MsbfsDiameter r = msbfs_diameter(g);
    EXPECT_EQ(r.diameter, truth.diameter) << "seed " << seed;
    EXPECT_EQ(r.connected, truth.connected) << "seed " << seed;
    EXPECT_EQ(r.sweeps, (g.num_vertices() + 63) / 64);
  }
}

TEST(MsBfs, EmptyAndTiny) {
  EXPECT_EQ(msbfs_diameter(Csr::from_edges(EdgeList{})).diameter, 0);
  EdgeList two;
  two.add(0, 1);
  const MsbfsDiameter r = msbfs_diameter(Csr::from_edges(std::move(two)));
  EXPECT_EQ(r.diameter, 1);
  EXPECT_TRUE(r.connected);
}

}  // namespace
}  // namespace fdiam
