// Tests for the CSR graph container.

#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/generators.hpp"
#include "graph/csr.hpp"

namespace fdiam {
namespace {

Csr triangle_plus_pendant() {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(2, 3);
  return Csr::from_edges(std::move(e));
}

TEST(Csr, CountsVerticesAndEdges) {
  const Csr g = triangle_plus_pendant();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_arcs(), 8u);
}

TEST(Csr, DegreesMatchTopology) {
  const Csr g = triangle_plus_pendant();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Csr, NeighborsAreSortedAndComplete) {
  const Csr g = triangle_plus_pendant();
  const auto adj2 = g.neighbors(2);
  ASSERT_EQ(adj2.size(), 3u);
  EXPECT_EQ(adj2[0], 0u);
  EXPECT_EQ(adj2[1], 1u);
  EXPECT_EQ(adj2[2], 3u);
}

TEST(Csr, DuplicateAndLoopEdgesCollapse) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  e.add(0, 0);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.validate());
}

TEST(Csr, HasEdgeIsSymmetric) {
  const Csr g = triangle_plus_pendant();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(3, 3));
}

TEST(Csr, MaxDegreeVertex) {
  const Csr g = triangle_plus_pendant();
  EXPECT_EQ(g.max_degree_vertex(), 2u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Csr, MaxDegreeVertexPrefersSmallestId) {
  const Csr g = make_path(5);  // vertices 1..3 all have degree 2
  EXPECT_EQ(g.max_degree_vertex(), 1u);
}

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::from_edges(EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Csr, IsolatedVerticesSurvive) {
  EdgeList e(10);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(9), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(Csr, FromRawValidInput) {
  // Path 0-1-2 in raw CSR form.
  const Csr g = Csr::from_raw({0, 1, 3, 4}, {1, 0, 2, 1});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.validate());
}

TEST(Csr, FromRawRejectsInconsistentOffsets) {
  EXPECT_THROW(Csr::from_raw({0, 5}, {1}), std::invalid_argument);
  EXPECT_THROW(Csr::from_raw({}, {}), std::invalid_argument);
  EXPECT_THROW(Csr::from_raw({0, 2, 1}, {1, 0, 2}), std::invalid_argument);
}

TEST(Csr, ValidateCatchesAsymmetry) {
  // Arc 0->1 without 1->0.
  const Csr g = Csr::from_raw({0, 1, 1}, {1});
  EXPECT_FALSE(g.validate());
}

TEST(Csr, ValidateCatchesSelfLoop) {
  const Csr g = Csr::from_raw({0, 1}, {0});
  EXPECT_FALSE(g.validate());
}

TEST(Csr, GeneratedGraphsValidate) {
  EXPECT_TRUE(make_grid(17, 9).validate());
  EXPECT_TRUE(make_complete(20).validate());
  EXPECT_TRUE(make_erdos_renyi(300, 900, 1).validate());
}

}  // namespace
}  // namespace fdiam
