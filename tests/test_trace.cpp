// Tests for the F-Diam progress-trace facility.

#include <gtest/gtest.h>

#include <vector>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

using Kind = FDiamEvent::Kind;

std::vector<FDiamEvent> trace_run(const Csr& g, FDiamOptions opt = {}) {
  std::vector<FDiamEvent> events;
  opt.trace = [&events](const FDiamEvent& e) { events.push_back(e); };
  fdiam_diameter(g, opt);
  return events;
}

int count(const std::vector<FDiamEvent>& events, Kind kind) {
  int c = 0;
  for (const auto& e : events) c += e.kind == kind;
  return c;
}

TEST(Trace, StartAndDoneBracketTheRun) {
  const auto events = trace_run(make_grid(20, 20));
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().kind, Kind::kStart);
  EXPECT_EQ(events.front().value, 400);
  EXPECT_EQ(events.back().kind, Kind::kDone);
  EXPECT_EQ(events.back().value, 38);
}

TEST(Trace, InitialBoundMatchesTwoSweep) {
  const auto events = trace_run(make_path(50));
  bool found = false;
  for (const auto& e : events) {
    if (e.kind == Kind::kInitialBound) {
      EXPECT_EQ(e.value, 49);  // 2-sweep is exact on paths
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, EccentricityEventsMatchStats) {
  const Csr g = make_erdos_renyi(300, 700, 3);
  std::vector<FDiamEvent> events;
  FDiamOptions opt;
  opt.trace = [&events](const FDiamEvent& e) { events.push_back(e); };
  const DiameterResult r = fdiam_diameter(g, opt);
  // Main-loop evaluations only (the 2-sweep pair is reported via
  // kInitialBound instead).
  EXPECT_EQ(static_cast<std::uint64_t>(count(events, Kind::kEccentricity)) + 2,
            r.stats.ecc_computations);
  EXPECT_EQ(static_cast<std::uint64_t>(count(events, Kind::kWinnow)),
            r.stats.winnow_calls);
}

TEST(Trace, BoundRaisedAppearsWhenComponentsGrow) {
  const Csr g = disjoint_union(make_star(40), make_cycle(30));
  const auto events = trace_run(g);
  EXPECT_GE(count(events, Kind::kBoundRaised), 1);
  EXPECT_GE(count(events, Kind::kExtendRegions), 1);
}

TEST(Trace, NoTraceMeansNoOverheadPath) {
  // Smoke check that a null trace is handled (the default everywhere).
  FDiamOptions opt;
  EXPECT_FALSE(opt.trace);
  EXPECT_EQ(fdiam_diameter(make_cycle(16), opt).diameter, 8);
}

TEST(Trace, DisabledStagesEmitNoStageEvents) {
  FDiamOptions opt;
  opt.use_winnow = false;
  opt.use_chain = false;
  opt.use_eliminate = false;
  std::vector<FDiamEvent> events;
  opt.trace = [&events](const FDiamEvent& e) { events.push_back(e); };
  fdiam_diameter(make_grid(8, 8), opt);
  EXPECT_EQ(count(events, Kind::kWinnow), 0);
  EXPECT_EQ(count(events, Kind::kChainsProcessed), 0);
  EXPECT_EQ(count(events, Kind::kEliminate), 0);
}

}  // namespace
}  // namespace fdiam
