// Tests for the F-Diam progress-trace facility and the Chrome-trace
// TraceSession built on top of it.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace fdiam {
namespace {

using Kind = FDiamEvent::Kind;

std::vector<FDiamEvent> trace_run(const Csr& g, FDiamOptions opt = {}) {
  std::vector<FDiamEvent> events;
  opt.trace = [&events](const FDiamEvent& e) { events.push_back(e); };
  fdiam_diameter(g, opt);
  return events;
}

int count(const std::vector<FDiamEvent>& events, Kind kind) {
  int c = 0;
  for (const auto& e : events) c += e.kind == kind;
  return c;
}

TEST(Trace, StartAndDoneBracketTheRun) {
  const auto events = trace_run(make_grid(20, 20));
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().kind, Kind::kStart);
  EXPECT_EQ(events.front().value, 400);
  EXPECT_EQ(events.back().kind, Kind::kDone);
  EXPECT_EQ(events.back().value, 38);
}

TEST(Trace, InitialBoundMatchesTwoSweep) {
  const auto events = trace_run(make_path(50));
  bool found = false;
  for (const auto& e : events) {
    if (e.kind == Kind::kInitialBound) {
      EXPECT_EQ(e.value, 49);  // 2-sweep is exact on paths
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, EccentricityEventsMatchStats) {
  const Csr g = make_erdos_renyi(300, 700, 3);
  std::vector<FDiamEvent> events;
  FDiamOptions opt;
  opt.trace = [&events](const FDiamEvent& e) { events.push_back(e); };
  const DiameterResult r = fdiam_diameter(g, opt);
  // Main-loop evaluations only (the 2-sweep pair is reported via
  // kInitialBound instead).
  EXPECT_EQ(static_cast<std::uint64_t>(count(events, Kind::kEccentricity)) + 2,
            r.stats.ecc_computations);
  EXPECT_EQ(static_cast<std::uint64_t>(count(events, Kind::kWinnow)),
            r.stats.winnow_calls);
}

TEST(Trace, BoundRaisedAppearsWhenComponentsGrow) {
  const Csr g = disjoint_union(make_star(40), make_cycle(30));
  const auto events = trace_run(g);
  EXPECT_GE(count(events, Kind::kBoundRaised), 1);
  EXPECT_GE(count(events, Kind::kExtendRegions), 1);
}

TEST(Trace, NoTraceMeansNoOverheadPath) {
  // Smoke check that a null trace is handled (the default everywhere).
  FDiamOptions opt;
  EXPECT_FALSE(opt.trace);
  EXPECT_EQ(fdiam_diameter(make_cycle(16), opt).diameter, 8);
}

TEST(Trace, TimedEventsCarryDurations) {
  const auto events = trace_run(make_grid(30, 30));
  double ecc_seconds = 0.0;
  for (const auto& e : events) {
    if (e.kind == Kind::kEccentricity) ecc_seconds += e.seconds;
    if (e.kind == Kind::kStart || e.kind == Kind::kBoundRaised) {
      EXPECT_EQ(e.seconds, 0.0);  // point events
    }
  }
  EXPECT_GT(ecc_seconds, 0.0);
  EXPECT_GT(events.back().seconds, 0.0);  // kDone carries the total runtime
  EXPECT_GE(events.back().seconds, ecc_seconds);
}

// --- TraceSession (Chrome trace_event output) -----------------------------

TEST(TraceSession, FDiamSinkProducesValidBalancedTrace) {
  const Csr g = make_grid(20, 20);
  obs::TraceSession session;
  FDiamOptions opt;
  opt.trace = session.fdiam_sink();
  const DiameterResult r = fdiam_diameter(g, opt);

  std::ostringstream os;
  session.write(os);
  const std::string doc = os.str();
  ASSERT_TRUE(obs::json_valid(doc)) << doc;
  ASSERT_EQ(doc.front(), '[');  // Chrome trace "JSON Array Format"

  // Balanced spans: every complete event carries a non-negative duration
  // (counting occurrences textually keeps the test parser-free).
  std::size_t spans = 0, ecc_spans = 0;
  for (std::size_t pos = 0; (pos = doc.find("\"ph\":\"X\"", pos)) !=
                            std::string::npos;
       ++pos) {
    ++spans;
  }
  for (std::size_t pos = 0;
       (pos = doc.find("\"name\":\"ecc_bfs\"", pos)) != std::string::npos;
       ++pos) {
    ++ecc_spans;
  }
  std::size_t durs = 0;
  for (std::size_t pos = 0;
       (pos = doc.find("\"dur\":", pos)) != std::string::npos; ++pos) {
    ++durs;
  }
  EXPECT_EQ(durs, spans);
  // One span per main-loop eccentricity BFS (the 2-sweep pair is the
  // "init" span), plus the top-level fdiam.run span.
  EXPECT_EQ(ecc_spans, r.stats.ecc_computations - 2);
  EXPECT_NE(doc.find("\"name\":\"fdiam.run\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"winnow\""), std::string::npos);
}

TEST(TraceSession, RaiiSpansAndInstantsRecord) {
  obs::TraceSession session;
  {
    const auto outer = session.span("outer", {{"k", std::int64_t{1}}});
    session.instant("marker", {{"note", std::string_view("hi")}});
  }
  EXPECT_EQ(session.size(), 2u);
  std::ostringstream os;
  session.write(os);
  ASSERT_TRUE(obs::json_valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(os.str().find("\"note\":\"hi\""), std::string::npos);
}

TEST(TraceSession, BfsLevelSinkEmitsOneSpanPerLevel) {
  const Csr g = make_grid(15, 15);
  obs::TraceSession session;
  FDiamOptions opt;
  opt.level_profile = session.bfs_level_sink();
  const DiameterResult r = fdiam_diameter(g, opt);
  EXPECT_EQ(session.size(), r.bfs.levels);
  std::ostringstream os;
  session.write(os);
  EXPECT_TRUE(obs::json_valid(os.str()));
}

// One parsed 'X' span from a trace document.
struct ParsedSpan {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double tid = 0.0;
};

/// Parse every complete ('X') span out of a trace document with the
/// library's own path lookup — the same machinery json_check trusts.
std::vector<ParsedSpan> parse_spans(const std::string& doc) {
  std::vector<ParsedSpan> spans;
  for (std::size_t i = 0;; ++i) {
    const std::string base = std::to_string(i);
    const auto ph = obs::json_string(doc, base + ".ph");
    if (!ph) break;  // end of the event array
    if (*ph != "X") continue;
    ParsedSpan s;
    s.name = obs::json_string(doc, base + ".name").value_or("");
    s.ts = obs::json_number(doc, base + ".ts").value_or(-1.0);
    s.dur = obs::json_number(doc, base + ".dur").value_or(-1.0);
    s.tid = obs::json_number(doc, base + ".tid").value_or(-1.0);
    spans.push_back(std::move(s));
  }
  return spans;
}

TEST(TraceSession, WrittenFileValidatesAndSpansNestPerThread) {
  // End-to-end over a real file, exactly like `fdiam_cli --trace-out` +
  // json_check: write, re-read, validate, then check span structure.
  const Csr g = make_grid(25, 25);
  obs::TraceSession session;
  FDiamOptions opt;
  opt.trace = session.fdiam_sink();
  opt.level_profile = session.bfs_level_sink();
  fdiam_diameter(g, opt);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "fdiam_test_trace.json";
  {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    session.write(out);
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  std::filesystem::remove(path);

  EXPECT_FALSE(obs::json_diagnose(doc).has_value())
      << *obs::json_diagnose(doc);

  const std::vector<ParsedSpan> spans = parse_spans(doc);
  ASSERT_FALSE(spans.empty());

  // Every complete span is well-formed: non-negative start and duration.
  const ParsedSpan* run = nullptr;
  for (const ParsedSpan& s : spans) {
    EXPECT_GE(s.ts, 0.0) << s.name;
    EXPECT_GE(s.dur, 0.0) << s.name;
    if (s.name == "fdiam.run") run = &s;
  }

  // Nesting: the fdiam.run span must enclose every stage span recorded on
  // its thread. complete() derives start times from independently-read
  // clocks, so allow a small epsilon rather than exact containment.
  ASSERT_NE(run, nullptr);
  constexpr double kEpsUs = 1000.0;
  for (const ParsedSpan& s : spans) {
    if (&s == run || s.tid != run->tid) continue;
    if (s.name != "ecc_bfs" && s.name != "winnow" && s.name != "init" &&
        s.name != "eliminate" && s.name != "extend_regions" &&
        s.name != "chain") {
      continue;
    }
    EXPECT_GE(s.ts + kEpsUs, run->ts) << s.name;
    EXPECT_LE(s.ts + s.dur, run->ts + run->dur + kEpsUs) << s.name;
  }
}

TEST(TraceSession, SpansCarryHwArgsWhenCountersCollected) {
  obs::TraceSession session;
  FDiamOptions opt;
  opt.hw_counters = true;
  opt.trace = session.fdiam_sink();
  const DiameterResult r = fdiam_diameter(make_grid(20, 20), opt);
  if (!r.hardware.any()) GTEST_SKIP() << "no counters on this machine";

  std::ostringstream os;
  session.write(os);
  ASSERT_TRUE(obs::json_valid(os.str()));
  // At least one available per-event count must have landed in span args
  // (on PMU-less machines that is the software task clock).
  bool found = false;
  for (std::size_t i = 0; i < obs::kHwEventCount; ++i) {
    const auto ev = static_cast<obs::HwEvent>(i);
    if (r.hardware.has(ev) &&
        os.str().find('"' + std::string(obs::hw_event_name(ev)) + '"') !=
            std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << os.str();
}

TEST(Trace, DisabledStagesEmitNoStageEvents) {
  FDiamOptions opt;
  opt.use_winnow = false;
  opt.use_chain = false;
  opt.use_eliminate = false;
  std::vector<FDiamEvent> events;
  opt.trace = [&events](const FDiamEvent& e) { events.push_back(e); };
  fdiam_diameter(make_grid(8, 8), opt);
  EXPECT_EQ(count(events, Kind::kWinnow), 0);
  EXPECT_EQ(count(events, Kind::kChainsProcessed), 0);
  EXPECT_EQ(count(events, Kind::kEliminate), 0);
}

}  // namespace
}  // namespace fdiam
