// Tests for the BFS engines: every execution mode must agree with the
// serial reference on distances and eccentricities, the direction-
// optimizing switch must not change results, and the last-frontier
// bookkeeping (used by the 2-sweep) must hold the deepest level.

#include <gtest/gtest.h>

#include <algorithm>

#include "bfs/bfs.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

struct BfsMode {
  const char* name;
  BfsConfig config;
};

class BfsModes : public ::testing::TestWithParam<BfsMode> {};

TEST_P(BfsModes, MatchesSerialReferenceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_erdos_renyi(400, 1000, seed);
    BfsEngine engine(g, GetParam().config);
    std::vector<dist_t> ref, got;
    for (vid_t s = 0; s < g.num_vertices(); s += 37) {
      const dist_t ecc_ref = bfs_distances_serial(g, s, ref);
      const dist_t ecc_got = engine.distances(s, got);
      EXPECT_EQ(ecc_ref, ecc_got) << "seed " << seed << " source " << s;
      EXPECT_EQ(ref, got) << "seed " << seed << " source " << s;
    }
  }
}

TEST_P(BfsModes, EccentricityAgreesWithDistances) {
  const Csr g = make_barabasi_albert(800, 3.0, 5);
  BfsEngine engine(g, GetParam().config);
  std::vector<dist_t> dist;
  for (vid_t s = 0; s < g.num_vertices(); s += 101) {
    EXPECT_EQ(engine.eccentricity(s), engine.distances(s, dist));
  }
}

TEST_P(BfsModes, LastFrontierHoldsDeepestLevel) {
  const Csr g = make_grid(15, 11);
  BfsEngine engine(g, GetParam().config);
  std::vector<dist_t> dist;
  const dist_t ecc = engine.distances(0, dist);
  const auto frontier = engine.last_frontier();
  ASSERT_FALSE(frontier.empty());
  // Frontier = exactly the vertices at distance ecc.
  const auto expected = static_cast<std::size_t>(
      std::count(dist.begin(), dist.end(), ecc));
  EXPECT_EQ(frontier.size(), expected);
  for (const vid_t v : frontier) EXPECT_EQ(dist[v], ecc);
}

TEST_P(BfsModes, IsolatedSourceHasZeroEccentricity) {
  EdgeList e(10);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  BfsEngine engine(g, GetParam().config);
  EXPECT_EQ(engine.eccentricity(9), 0);
  EXPECT_EQ(engine.last_visited_count(), 1u);
  ASSERT_EQ(engine.last_frontier().size(), 1u);
  EXPECT_EQ(engine.last_frontier()[0], 9u);
}

TEST_P(BfsModes, DisconnectedGraphStaysInComponent) {
  const Csr g = disjoint_union(make_path(20), make_cycle(8));
  BfsEngine engine(g, GetParam().config);
  EXPECT_EQ(engine.eccentricity(0), 19);
  EXPECT_EQ(engine.last_visited_count(), 20u);
  EXPECT_EQ(engine.eccentricity(20), 4);
  EXPECT_EQ(engine.last_visited_count(), 8u);
}

TEST_P(BfsModes, RepeatedTraversalsAreIndependent) {
  const Csr g = make_grid(20, 20);
  BfsEngine engine(g, GetParam().config);
  const dist_t first = engine.eccentricity(0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(engine.eccentricity(0), first);
  EXPECT_EQ(engine.stats().traversals, 11u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BfsModes,
    ::testing::Values(
        BfsMode{"serial_topdown", BfsConfig{false, false, 0.1}},
        BfsMode{"serial_hybrid", BfsConfig{false, true, 0.1}},
        BfsMode{"parallel_topdown", BfsConfig{true, false, 0.1}},
        BfsMode{"parallel_hybrid", BfsConfig{true, true, 0.1}},
        // Degenerate thresholds force the bottom-up path early/never.
        BfsMode{"hybrid_always_bottomup", BfsConfig{true, true, 0.0}},
        BfsMode{"hybrid_never_bottomup", BfsConfig{true, true, 1.0}}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(BfsEngine, BottomUpLevelsActuallyTriggerOnSmallWorld) {
  // A dense small-world graph drives the frontier over 10% of |V|.
  const Csr g = make_barabasi_albert(5000, 8.0, 2);
  BfsEngine engine(g, BfsConfig{true, true, 0.1});
  engine.eccentricity(g.max_degree_vertex());
  EXPECT_GT(engine.stats().bottomup_levels, 0u);
  EXPECT_GT(engine.stats().topdown_levels, 0u);
}

TEST(BfsEngine, HighDiameterGraphNeverTriggersBottomUp) {
  // Paper §6.2: on europe_osm-like graphs the worklist never passes the
  // threshold, so the bottom-up code never runs.
  const Csr g = make_path(2000);
  BfsEngine engine(g, BfsConfig{true, true, 0.1});
  engine.eccentricity(0);
  EXPECT_EQ(engine.stats().bottomup_levels, 0u);
}

TEST(BfsEngine, StatsAccumulateAndReset) {
  const Csr g = make_grid(10, 10);
  BfsEngine engine(g, BfsConfig{false, false, 0.1});
  engine.eccentricity(0);
  engine.eccentricity(5);
  EXPECT_EQ(engine.stats().traversals, 2u);
  EXPECT_GT(engine.stats().edges_examined, 0u);
  EXPECT_EQ(engine.stats().vertices_visited, 200u);
  engine.reset_stats();
  EXPECT_EQ(engine.stats().traversals, 0u);
}

TEST(MultiSource, MatchesMinOfSingleSourceDistances) {
  const Csr g = make_erdos_renyi(300, 700, 9);
  const std::vector<vid_t> seeds = {3, 77, 150};
  std::vector<dist_t> multi;
  multi_source_distances(g, seeds, multi);

  std::vector<dist_t> d0, d1, d2;
  bfs_distances_serial(g, seeds[0], d0);
  bfs_distances_serial(g, seeds[1], d1);
  bfs_distances_serial(g, seeds[2], d2);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    dist_t best = kUnreached;
    for (const dist_t d : {d0[v], d1[v], d2[v]}) {
      if (d != kUnreached && (best == kUnreached || d < best)) best = d;
    }
    EXPECT_EQ(multi[v], best) << "vertex " << v;
  }
}

TEST(MultiSource, DuplicateSeedsAreHarmless) {
  const Csr g = make_path(10);
  std::vector<dist_t> dist;
  const std::vector<vid_t> seeds = {0, 0, 9};
  multi_source_distances(g, seeds, dist);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[9], 0);
  EXPECT_EQ(dist[4], 4);
  EXPECT_EQ(dist[5], 4);
}

}  // namespace
}  // namespace fdiam
