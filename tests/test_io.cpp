// Round-trip and error-handling tests for every graph file format.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "gen/generators.hpp"
#include "io/io.hpp"

namespace fdiam {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdiam_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }

  static void expect_same_graph(const Csr& a, const Csr& b) {
    ASSERT_EQ(a.num_vertices(), b.num_vertices());
    ASSERT_EQ(a.num_arcs(), b.num_arcs());
    for (vid_t v = 0; v < a.num_vertices(); ++v) {
      const auto na = a.neighbors(v);
      const auto nb = b.neighbors(v);
      ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
      for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
    }
  }

  fs::path dir_;
};

TEST_F(IoTest, DimacsRoundTrip) {
  const Csr g = make_erdos_renyi(200, 600, 5);
  io::write_dimacs(g, file("g.gr"));
  expect_same_graph(g, io::read_dimacs(file("g.gr")));
}

TEST_F(IoTest, SnapRoundTrip) {
  const Csr g = make_barabasi_albert(300, 2.0, 6);
  io::write_snap(g, file("g.txt"));
  expect_same_graph(g, io::read_snap(file("g.txt")));
}

TEST_F(IoTest, MatrixMarketRoundTrip) {
  const Csr g = make_grid(12, 7);
  io::write_matrix_market(g, file("g.mtx"));
  expect_same_graph(g, io::read_matrix_market(file("g.mtx")));
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Csr g = make_rmat(10, 8.0, 0.45, 0.15, 0.15, 7);
  io::write_binary(g, file("g.csrbin"));
  expect_same_graph(g, io::read_binary(file("g.csrbin")));
}

TEST_F(IoTest, BinaryPreservesIsolatedVertices) {
  EdgeList e(50);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  io::write_binary(g, file("iso.csrbin"));
  const Csr h = io::read_binary(file("iso.csrbin"));
  EXPECT_EQ(h.num_vertices(), 50u);
}

TEST_F(IoTest, LoaderDispatchesByExtension) {
  const Csr g = make_cycle(9);
  io::write_dimacs(g, file("a.gr"));
  io::write_snap(g, file("a.txt"));
  io::write_matrix_market(g, file("a.mtx"));
  io::write_binary(g, file("a.csrbin"));
  expect_same_graph(g, io::load_graph(file("a.gr")));
  expect_same_graph(g, io::load_graph(file("a.txt")));
  expect_same_graph(g, io::load_graph(file("a.mtx")));
  expect_same_graph(g, io::load_graph(file("a.csrbin")));
}

TEST_F(IoTest, LoaderRejectsUnknownExtension) {
  EXPECT_THROW(io::load_graph(file("x.unknown")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(io::read_dimacs(file("missing.gr")), std::runtime_error);
  EXPECT_THROW(io::read_snap(file("missing.txt")), std::runtime_error);
  EXPECT_THROW(io::read_binary(file("missing.csrbin")), std::runtime_error);
}

TEST_F(IoTest, DimacsSkipsCommentsAndIgnoresWeights) {
  std::ofstream out(file("c.gr"));
  out << "c a comment\np sp 3 4\na 1 2 99\nc another\na 2 3 7\n";
  out.close();
  const Csr g = io::read_dimacs(file("c.gr"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST_F(IoTest, DimacsWithoutHeaderThrows) {
  std::ofstream out(file("bad.gr"));
  out << "a 1 2 1\n";
  out.close();
  EXPECT_THROW(io::read_dimacs(file("bad.gr")), std::runtime_error);
}

TEST_F(IoTest, SnapSkipsCommentLines) {
  std::ofstream out(file("s.txt"));
  out << "# from snap\n0 1\n1 2\n";
  out.close();
  const Csr g = io::read_snap(file("s.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, SnapMalformedLineThrows) {
  std::ofstream out(file("bad.txt"));
  out << "0 1\nnot numbers\n";
  out.close();
  EXPECT_THROW(io::read_snap(file("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRealValuesAreIgnored) {
  std::ofstream out(file("w.mtx"));
  out << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "% weights get dropped\n"
      << "3 3 2\n2 1 0.5\n3 2 1.5\n";
  out.close();
  const Csr g = io::read_matrix_market(file("w.mtx"));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST_F(IoTest, MatrixMarketWithoutBannerThrows) {
  std::ofstream out(file("nb.mtx"));
  out << "3 3 1\n1 2\n";
  out.close();
  EXPECT_THROW(io::read_matrix_market(file("nb.mtx")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsCorruptMagic) {
  std::ofstream out(file("bad.csrbin"), std::ios::binary);
  out << "NOTMAGIC0000000000000000000000";
  out.close();
  EXPECT_THROW(io::read_binary(file("bad.csrbin")), std::runtime_error);
}

}  // namespace
}  // namespace fdiam
