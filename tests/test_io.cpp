// Round-trip and error-handling tests for every graph file format.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include "gen/generators.hpp"
#include "io/io.hpp"

namespace fdiam {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdiam_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }

  static void expect_same_graph(const Csr& a, const Csr& b) {
    ASSERT_EQ(a.num_vertices(), b.num_vertices());
    ASSERT_EQ(a.num_arcs(), b.num_arcs());
    for (vid_t v = 0; v < a.num_vertices(); ++v) {
      const auto na = a.neighbors(v);
      const auto nb = b.neighbors(v);
      ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
      for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
    }
  }

  fs::path dir_;
};

TEST_F(IoTest, DimacsRoundTrip) {
  const Csr g = make_erdos_renyi(200, 600, 5);
  io::write_dimacs(g, file("g.gr"));
  expect_same_graph(g, io::read_dimacs(file("g.gr")));
}

TEST_F(IoTest, SnapRoundTrip) {
  const Csr g = make_barabasi_albert(300, 2.0, 6);
  io::write_snap(g, file("g.txt"));
  expect_same_graph(g, io::read_snap(file("g.txt")));
}

TEST_F(IoTest, MatrixMarketRoundTrip) {
  const Csr g = make_grid(12, 7);
  io::write_matrix_market(g, file("g.mtx"));
  expect_same_graph(g, io::read_matrix_market(file("g.mtx")));
}

TEST_F(IoTest, BinaryRoundTrip) {
  const Csr g = make_rmat(10, 8.0, 0.45, 0.15, 0.15, 7);
  io::write_binary(g, file("g.csrbin"));
  expect_same_graph(g, io::read_binary(file("g.csrbin")));
}

TEST_F(IoTest, BinaryPreservesIsolatedVertices) {
  EdgeList e(50);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  io::write_binary(g, file("iso.csrbin"));
  const Csr h = io::read_binary(file("iso.csrbin"));
  EXPECT_EQ(h.num_vertices(), 50u);
}

TEST_F(IoTest, LoaderDispatchesByExtension) {
  const Csr g = make_cycle(9);
  io::write_dimacs(g, file("a.gr"));
  io::write_snap(g, file("a.txt"));
  io::write_matrix_market(g, file("a.mtx"));
  io::write_binary(g, file("a.csrbin"));
  expect_same_graph(g, io::load_graph(file("a.gr")));
  expect_same_graph(g, io::load_graph(file("a.txt")));
  expect_same_graph(g, io::load_graph(file("a.mtx")));
  expect_same_graph(g, io::load_graph(file("a.csrbin")));
}

TEST_F(IoTest, LoaderRejectsUnknownExtension) {
  EXPECT_THROW(io::load_graph(file("x.unknown")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(io::read_dimacs(file("missing.gr")), std::runtime_error);
  EXPECT_THROW(io::read_snap(file("missing.txt")), std::runtime_error);
  EXPECT_THROW(io::read_binary(file("missing.csrbin")), std::runtime_error);
}

TEST_F(IoTest, DimacsSkipsCommentsAndIgnoresWeights) {
  std::ofstream out(file("c.gr"));
  out << "c a comment\np sp 3 4\na 1 2 99\nc another\na 2 3 7\n";
  out.close();
  const Csr g = io::read_dimacs(file("c.gr"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST_F(IoTest, DimacsWithoutHeaderThrows) {
  std::ofstream out(file("bad.gr"));
  out << "a 1 2 1\n";
  out.close();
  EXPECT_THROW(io::read_dimacs(file("bad.gr")), std::runtime_error);
}

TEST_F(IoTest, SnapSkipsCommentLines) {
  std::ofstream out(file("s.txt"));
  out << "# from snap\n0 1\n1 2\n";
  out.close();
  const Csr g = io::read_snap(file("s.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, SnapMalformedLineThrows) {
  std::ofstream out(file("bad.txt"));
  out << "0 1\nnot numbers\n";
  out.close();
  EXPECT_THROW(io::read_snap(file("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRealValuesAreIgnored) {
  std::ofstream out(file("w.mtx"));
  out << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "% weights get dropped\n"
      << "3 3 2\n2 1 0.5\n3 2 1.5\n";
  out.close();
  const Csr g = io::read_matrix_market(file("w.mtx"));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST_F(IoTest, MatrixMarketWithoutBannerThrows) {
  std::ofstream out(file("nb.mtx"));
  out << "3 3 1\n1 2\n";
  out.close();
  EXPECT_THROW(io::read_matrix_market(file("nb.mtx")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsCorruptMagic) {
  std::ofstream out(file("bad.csrbin"), std::ios::binary);
  out << "NOTMAGIC0000000000000000000000";
  out.close();
  EXPECT_THROW(io::read_binary(file("bad.csrbin")), std::runtime_error);
}

// --- Input hardening (docs/HARDENING.md) ------------------------------------
// These drive the std::istream overloads directly — the same entry points
// the fuzz harnesses use — so no temp files are involved.

Csr parse_dimacs(const std::string& text, io::IoLimits limits = {}) {
  std::istringstream in(text);
  return io::read_dimacs(in, "test.gr", limits);
}
Csr parse_snap(const std::string& text, io::IoLimits limits = {}) {
  std::istringstream in(text);
  return io::read_snap(in, "test.txt", limits);
}
Csr parse_mtx(const std::string& text, io::IoLimits limits = {}) {
  std::istringstream in(text);
  return io::read_matrix_market(in, "test.mtx", limits);
}
Csr parse_metis(const std::string& text, io::IoLimits limits = {}) {
  std::istringstream in(text);
  return io::read_metis(in, "test.metis", limits);
}
Csr parse_binary(const std::string& bytes, io::IoLimits limits = {}) {
  std::istringstream in(bytes, std::ios::in | std::ios::binary);
  return io::read_binary(in, "test.csrbin", limits);
}

TEST_F(IoTest, SnapRejectsIdsBeyondVidRange) {
  // 2^32 used to static_cast down to vertex 0 and silently build a wrong
  // graph; now it must throw with the offending value in the message.
  try {
    parse_snap("0 4294967296\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("4294967296"), std::string::npos);
  }
  // The vid_t maximum itself is also out: num_vertices = id + 1 would wrap.
  EXPECT_THROW(parse_snap("0 4294967295\n"), std::runtime_error);
  // A small id parses.
  EXPECT_EQ(parse_snap("0 1\n").num_vertices(), 2u);
}

TEST_F(IoTest, SnapRejectsNegativeAndFloatIds) {
  EXPECT_THROW(parse_snap("-1 3\n"), std::runtime_error);
  EXPECT_THROW(parse_snap("0 1.5\n"), std::runtime_error);
  EXPECT_THROW(parse_snap("0 1e3\n"), std::runtime_error);
}

TEST_F(IoTest, SnapToleratesExtraColumnsAndBlankLines) {
  const Csr g = parse_snap("\n0 1 1462312310 0.75\n\n1 2 x\n");
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, SnapEnforcesIoLimits) {
  io::IoLimits tight;
  tight.max_vertices = 4;
  EXPECT_THROW(parse_snap("0 9\n", tight), std::runtime_error);
  tight.max_vertices = 100;
  tight.max_edges = 1;
  EXPECT_THROW(parse_snap("0 1\n1 2\n", tight), std::runtime_error);
}

TEST_F(IoTest, DimacsRejectsStructuralGarbage) {
  // duplicate header
  EXPECT_THROW(parse_dimacs("p sp 2 1\np sp 2 1\na 1 2 1\n"),
               std::runtime_error);
  // endpoint out of the declared range (0 and n+1 both invalid: 1-indexed)
  EXPECT_THROW(parse_dimacs("p sp 2 1\na 0 2 1\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs("p sp 2 1\na 1 3 1\n"), std::runtime_error);
  // unknown line tag
  EXPECT_THROW(parse_dimacs("p sp 2 1\nq 1 2 1\n"), std::runtime_error);
  // non-numeric header counts
  EXPECT_THROW(parse_dimacs("p sp two 1\n"), std::runtime_error);
}

TEST_F(IoTest, DimacsHeaderCannotLieAboutSizeToForceAllocation) {
  io::IoLimits tight;
  tight.max_vertices = 1u << 12;
  tight.max_edges = 1u << 16;
  // A header declaring 2^60 vertices must throw BEFORE any allocation.
  EXPECT_THROW(parse_dimacs("p sp 1152921504606846976 1\na 1 2 1\n", tight),
               std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRejectsOutOfBoxEntriesAndTruncation) {
  const std::string banner =
      "%%MatrixMarket matrix coordinate pattern general\n";
  // entry outside the declared rows x cols box
  EXPECT_THROW(parse_mtx(banner + "2 2 1\n3 1\n"), std::runtime_error);
  EXPECT_THROW(parse_mtx(banner + "2 2 1\n1 0\n"), std::runtime_error);
  // fewer entries than nnz declares (the truncated-download case)
  EXPECT_THROW(parse_mtx(banner + "3 3 2\n1 2\n"), std::runtime_error);
  // trailing non-blank content after the declared entries
  EXPECT_THROW(parse_mtx(banner + "3 3 1\n1 2\nsurprise\n"),
               std::runtime_error);
  // pattern entries must not be missing the column
  EXPECT_THROW(parse_mtx(banner + "3 3 1\n1\n"), std::runtime_error);
}

TEST_F(IoTest, MetisRejectsBadFormatAndRanges) {
  // fmt digits other than 0/1
  EXPECT_THROW(parse_metis("2 1 23\n2\n1\n"), std::runtime_error);
  // neighbor out of [1, n]
  EXPECT_THROW(parse_metis("2 1\n3\n1\n"), std::runtime_error);
  EXPECT_THROW(parse_metis("2 1\n0\n1\n"), std::runtime_error);
  // fmt=1 promises edge weights; a lone neighbor is truncated
  EXPECT_THROW(parse_metis("2 1 1\n2\n1 5\n"), std::runtime_error);
  // adjacency lines beyond the declared n
  EXPECT_THROW(parse_metis("2 1\n2\n1\n1 2\n"), std::runtime_error);
  // truncated: fewer adjacency lines than n
  EXPECT_THROW(parse_metis("3 2\n2\n1 3\n"), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncatedAndOversizedPayload) {
  const Csr g = make_path(6);
  io::write_binary(g, file("p.csrbin"));
  std::string bytes;
  {
    std::ifstream in(file("p.csrbin"), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_FALSE(bytes.empty());
  // the pristine bytes load
  expect_same_graph(g, parse_binary(bytes));
  // any truncation point must throw, never crash or misparse
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() - 7,
                                bytes.size() / 2, std::size_t{9}}) {
    EXPECT_THROW(parse_binary(bytes.substr(0, cut)), std::runtime_error)
        << "cut at " << cut;
  }
  // trailing junk is flagged too (header promises an exact payload)
  EXPECT_THROW(parse_binary(bytes + "junk"), std::runtime_error);
}

TEST_F(IoTest, BinaryHeaderCannotLieAboutSizeToForceAllocation) {
  // Hand-build a header declaring 2^60 vertices with no payload: the
  // size checks must reject it before sizing any vector.
  std::string bytes = "FDIAMCSR";
  const std::uint32_t version = 1;
  const std::uint64_t n = std::uint64_t{1} << 60;
  const std::uint64_t arcs = 0;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof version);
  bytes.append(reinterpret_cast<const char*>(&n), sizeof n);
  bytes.append(reinterpret_cast<const char*>(&arcs), sizeof arcs);
  EXPECT_THROW(parse_binary(bytes), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsCorruptOffsets) {
  // Valid header, payload the right size, but offsets not monotone: the
  // Csr::from_raw invariants must catch it as a runtime_error.
  std::string bytes = "FDIAMCSR";
  const std::uint32_t version = 1;
  const std::uint64_t n = 2;
  const std::uint64_t arcs = 2;
  bytes.append(reinterpret_cast<const char*>(&version), sizeof version);
  bytes.append(reinterpret_cast<const char*>(&n), sizeof n);
  bytes.append(reinterpret_cast<const char*>(&arcs), sizeof arcs);
  const eid_t offsets[3] = {0, 5, 2};  // decreasing — corrupt
  const vid_t neighbors[2] = {1, 0};
  bytes.append(reinterpret_cast<const char*>(offsets), sizeof offsets);
  bytes.append(reinterpret_cast<const char*>(neighbors), sizeof neighbors);
  EXPECT_THROW(parse_binary(bytes), std::runtime_error);
}

TEST_F(IoTest, EmptyGraphRoundTripsThroughEveryFormat) {
  const Csr empty;
  io::write_dimacs(empty, file("e.gr"));
  EXPECT_EQ(io::read_dimacs(file("e.gr")).num_vertices(), 0u);
  io::write_snap(empty, file("e.txt"));
  EXPECT_EQ(io::read_snap(file("e.txt")).num_vertices(), 0u);
  io::write_matrix_market(empty, file("e.mtx"));
  EXPECT_EQ(io::read_matrix_market(file("e.mtx")).num_vertices(), 0u);
  io::write_metis(empty, file("e.metis"));
  EXPECT_EQ(io::read_metis(file("e.metis")).num_vertices(), 0u);
  // write_binary used to emit a headerless offsets array for the empty
  // graph, which its own reader then rejected as truncated.
  io::write_binary(empty, file("e.csrbin"));
  EXPECT_EQ(io::read_binary(file("e.csrbin")).num_vertices(), 0u);
}

}  // namespace
}  // namespace fdiam
