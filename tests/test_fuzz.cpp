// Mutation fuzzing: start from a structured graph, apply random edge
// insertions/deletions, and cross-check F-Diam (all parallel modes)
// against the APSP ground truth. Deletions can disconnect the graph or
// create chains/isolated vertices, hitting many rare paths at once.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "util/rng.hpp"

namespace fdiam {
namespace {

Csr mutate(const Csr& base, int additions, int deletions,
           std::uint64_t seed) {
  Rng rng(seed);
  const vid_t n = base.num_vertices();

  // Collect the edge set, delete a random sample, add random pairs.
  std::vector<Edge> edges;
  for (vid_t v = 0; v < n; ++v) {
    for (const vid_t w : base.neighbors(v)) {
      if (v < w) edges.push_back({v, w});
    }
  }
  for (int d = 0; d < deletions && !edges.empty(); ++d) {
    const auto i = static_cast<std::size_t>(rng.below(edges.size()));
    edges[i] = edges.back();
    edges.pop_back();
  }
  EdgeList out(n);
  for (const Edge& e : edges) out.add(e.u, e.v);
  for (int a = 0; a < additions; ++a) {
    const auto u = static_cast<vid_t>(rng.below(n));
    const auto v = static_cast<vid_t>(rng.below(n));
    if (u != v) out.add(u, v);
  }
  return Csr::from_edges(std::move(out));
}

struct FuzzCase {
  const char* base;
  Csr (*make)(std::uint64_t seed);
};

class MutationFuzz
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MutationFuzz, FDiamAlwaysMatchesApsp) {
  const auto [family, seed] = GetParam();
  const auto useed = static_cast<std::uint64_t>(seed);
  Csr base;
  switch (family) {
    case 0: base = make_grid(14, 14); break;
    case 1: base = make_barabasi_albert(200, 2.0, useed); break;
    case 2: base = make_cycle(150); break;
    case 3: base = make_random_tree(180, useed); break;
    default: base = make_erdos_renyi(200, 400, useed); break;
  }
  // Three mutation intensities, from light perturbation to shredding.
  for (const auto [add, del] : {std::pair{3, 3}, {0, 40}, {25, 60}}) {
    const Csr g = mutate(base, add, del, useed * 31 + add + del);
    const BaselineResult truth = apsp_diameter(g);

    const DiameterResult par = fdiam_diameter(g);
    EXPECT_EQ(par.diameter, truth.diameter)
        << "family " << family << " seed " << seed << " +" << add << " -"
        << del;
    EXPECT_EQ(par.connected, truth.connected);

    FDiamOptions serial;
    serial.parallel = false;
    EXPECT_EQ(fdiam_diameter(g, serial).diameter, truth.diameter);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, MutationFuzz,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(1, 7)));

}  // namespace
}  // namespace fdiam
