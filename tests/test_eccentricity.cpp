// Tests for the convenience eccentricity API.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "core/eccentricity.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

TEST(Eccentricity, KnownValuesOnPath) {
  const Csr g = make_path(9);
  EXPECT_EQ(eccentricity(g, 0), 8);
  EXPECT_EQ(eccentricity(g, 4), 4);
  EXPECT_EQ(eccentricity(g, 8), 8);
}

TEST(Eccentricity, StarHubVersusLeaf) {
  const Csr g = make_star(12);
  EXPECT_EQ(eccentricity(g, 0), 1);   // hub
  EXPECT_EQ(eccentricity(g, 5), 2);   // leaf
}

TEST(Eccentricity, BatchMatchesSingle) {
  const Csr g = make_erdos_renyi(200, 600, 4);
  const std::vector<vid_t> sources = {0, 10, 50, 199};
  const auto batch = eccentricities(g, sources);
  ASSERT_EQ(batch.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(batch[i], eccentricity(g, sources[i]));
  }
}

TEST(AllEccentricities, MatchesPerVertexBfs) {
  const Csr g = make_barabasi_albert(250, 2.0, 8);
  const auto all = all_eccentricities(g);
  ASSERT_EQ(all.size(), g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); v += 17) {
    EXPECT_EQ(all[v], eccentricity(g, v));
  }
}

TEST(AllEccentricities, AdjacentVerticesDifferByAtMostOne) {
  // Theorem 1 of the paper, checked exhaustively on a random graph.
  const Csr g = make_erdos_renyi(300, 900, 15);
  const auto ecc = all_eccentricities(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      EXPECT_LE(std::abs(ecc[v] - ecc[w]), 1) << v << " ~ " << w;
    }
  }
}

TEST(AllEccentricities, MinimumAtLeastHalfTheDiameter) {
  // Theorem 3 of the paper: radius >= diameter / 2 on connected graphs.
  const Csr g = make_barabasi_albert(400, 3.0, 21);
  const auto ecc = all_eccentricities(g);
  const dist_t diameter = *std::max_element(ecc.begin(), ecc.end());
  const dist_t radius = *std::min_element(ecc.begin(), ecc.end());
  EXPECT_GE(2 * radius, diameter);
}

TEST(AllEccentricities, AtLeastTwoVerticesRealizeTheDiameter) {
  // Theorem 2 of the paper.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Csr g = make_barabasi_albert(200, 2.0, seed);
    const auto ecc = all_eccentricities(g);
    const dist_t diameter = *std::max_element(ecc.begin(), ecc.end());
    const auto peripheral =
        std::count(ecc.begin(), ecc.end(), diameter);
    EXPECT_GE(peripheral, 2) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fdiam
