// Hardening tests: deterministic scenarios that force the rarely-taken
// internal paths — diameter-bound growth with winnow/eliminate region
// extension, multi-component scans, budget aborts, and thread-count
// invariance.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "util/parallel.hpp"

namespace fdiam {
namespace {

TEST(BoundGrowth, LaterComponentRaisesTheBoundAndExtendsWinnow) {
  // u (the max-degree hub) lives in a star with diameter 2, so the
  // initial bound is tiny; the cycle component found later in the scan
  // raises it to 30, forcing a winnow extension around u.
  const Csr g = disjoint_union(make_star(100), make_cycle(60));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 30);
  EXPECT_FALSE(r.connected);
  EXPECT_GE(r.stats.winnow_calls, 2u);  // initial + at least one extension
}

TEST(BoundGrowth, EliminatedRegionsExtendOnBoundIncrease) {
  // Same construction, but assert the multi-source extension actually ran
  // (seeded by the star leaf whose exact eccentricity equals the old
  // bound).
  const Csr g = disjoint_union(make_star(100), make_cycle(60));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_GE(r.stats.extension_calls, 1u);
  EXPECT_EQ(r.diameter, 30);
}

TEST(BoundGrowth, ManyProgressiveIncreases) {
  // Components in increasing-diameter order force repeated bound growth:
  // star (2), then cycles of diameter 5, 10, 20, 40.
  Csr g = make_star(50);
  for (const vid_t len : {10u, 20u, 40u, 80u}) {
    g = disjoint_union(g, make_cycle(len));
  }
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 40);
  const BaselineResult truth = apsp_diameter(g);
  EXPECT_EQ(r.diameter, truth.diameter);
}

TEST(BoundGrowth, DecreasingComponentOrderNeverExtends) {
  // All vertices have degree 2, so u is vertex 0 inside the LARGEST
  // component (the 80-cycle): the initial bound is already the final
  // diameter and no extension should ever run.
  Csr g = make_cycle(80);
  g = disjoint_union(g, make_cycle(20));
  g = disjoint_union(g, make_cycle(12));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 40);
  EXPECT_EQ(r.stats.extension_calls, 0u);
}

TEST(Budget, TimeBudgetAbortsFDiam) {
  RoadOptions opt;
  opt.grid_width = opt.grid_height = 50;
  const Csr g = make_road_network(opt, 5);
  FDiamOptions fopt;
  fopt.time_budget_seconds = 1e-9;
  const DiameterResult r = fdiam_diameter(g, fopt);
  EXPECT_TRUE(r.timed_out);
  // The reported value is still a valid lower bound.
  EXPECT_LE(r.diameter, apsp_diameter(g).diameter);
}

TEST(Budget, GenerousBudgetDoesNotAbort) {
  const Csr g = make_grid(30, 30);
  FDiamOptions fopt;
  fopt.time_budget_seconds = 3600.0;
  const DiameterResult r = fdiam_diameter(g, fopt);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.diameter, 58);
}

TEST(Threads, DiameterInvariantUnderThreadCount) {
  // Parallel scheduling may change which periphery vertex the 2-sweep
  // picks (frontier order is nondeterministic), but the diameter must
  // not change.
  const Csr g = make_rmat(12, 8.0, 0.45, 0.15, 0.15, 17);
  const int original = num_threads();
  const dist_t truth = fdiam_diameter(g, {.parallel = false}).diameter;
  for (const int t : {1, 2, 4}) {
    set_num_threads(t);
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(fdiam_diameter(g).diameter, truth) << t << " threads";
    }
  }
  set_num_threads(original);
}

TEST(Threads, BaselinesInvariantUnderThreadCount) {
  const Csr g = make_barabasi_albert(2000, 3.0, 8);
  const dist_t truth = ifub_diameter(g, {}).diameter;
  const int original = num_threads();
  set_num_threads(4);
  BaselineOptions par;
  par.parallel = true;
  EXPECT_EQ(ifub_diameter(g, par).diameter, truth);
  EXPECT_EQ(apsp_diameter(g, par).diameter, apsp_diameter(g, {}).diameter);
  set_num_threads(original);
}

TEST(Degenerate, SelfLoopsAndMultiEdgesCollapseBeforeFDiam) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  e.add(0, 0);
  e.add(1, 2);
  e.add(1, 2);
  e.add(2, 2);
  const Csr g = Csr::from_edges(std::move(e));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(fdiam_diameter(g).diameter, 2);
}

TEST(Degenerate, StarOfStars) {
  // Hub connected to k sub-hubs, each with its own leaves: diameter 4.
  EdgeList e;
  vid_t next = 1;
  for (int sub = 0; sub < 8; ++sub) {
    const vid_t hub = next++;
    e.add(0, hub);
    for (int leaf = 0; leaf < 10; ++leaf) e.add(hub, next++);
  }
  const Csr g = Csr::from_edges(std::move(e));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 4);
}

TEST(Degenerate, CycleWithSingleTail) {
  // The chain walk must stop at the cycle junction (degree 3), not loop.
  EdgeList e;
  for (vid_t v = 0; v + 1 < 20; ++v) e.add(v, v + 1);
  e.add(19, 0);                        // cycle 0..19
  e.add(0, 20);                        // tail of length 5 at junction 0
  for (vid_t v = 20; v < 24; ++v) e.add(v, v + 1);
  const Csr g = Csr::from_edges(std::move(e));
  const BaselineResult truth = apsp_diameter(g);
  EXPECT_EQ(fdiam_diameter(g).diameter, truth.diameter);
  EXPECT_EQ(truth.diameter, 15);  // tail tip (24) to cycle antipode (10)
}

TEST(Degenerate, TwoTailsOfVeryDifferentLength) {
  // Long and short tail on the same dense core: the short tail's chain
  // elimination must not erase the long tail's dominance.
  EdgeList e;
  // Core: complete graph on 0..9.
  for (vid_t u = 0; u < 10; ++u) {
    for (vid_t v = u + 1; v < 10; ++v) e.add(u, v);
  }
  vid_t next = 10;
  vid_t prev = 0;
  for (int i = 0; i < 30; ++i) {  // long tail at core vertex 0
    e.add(prev, next);
    prev = next++;
  }
  prev = 5;
  for (int i = 0; i < 3; ++i) {  // short tail at core vertex 5
    e.add(prev, next);
    prev = next++;
  }
  const Csr g = Csr::from_edges(std::move(e));
  const BaselineResult truth = apsp_diameter(g);
  EXPECT_EQ(fdiam_diameter(g).diameter, truth.diameter);
  EXPECT_EQ(truth.diameter, 30 + 1 + 3);
}

TEST(Degenerate, BinaryTreeChainsInterlock) {
  // Every leaf of a deep binary tree is a degree-1 chain tip of length 1;
  // dozens of overlapping chain eliminations must stay consistent.
  const Csr g = make_balanced_tree(2, 8);
  EXPECT_EQ(fdiam_diameter(g).diameter, 16);
}

TEST(Degenerate, HugeStarPlusPendantChain) {
  // Max-degree start is the hub; bound initializes to hub-leaf-chain
  // geometry and chain processing must keep exactly the chain tip alive.
  EdgeList e;
  for (vid_t v = 1; v <= 1000; ++v) e.add(0, v);
  vid_t prev = 1;
  vid_t next = 1001;
  for (int i = 0; i < 12; ++i) {
    e.add(prev, next);
    prev = next++;
  }
  const Csr g = Csr::from_edges(std::move(e));
  EXPECT_EQ(fdiam_diameter(g).diameter, 14);  // leaf -> hub -> chain tip
}


TEST(BatchedCandidates, StaysExactAndCountsRedundancy) {
  // The rejected 4.6 alternative must stay exact; on graphs where
  // Eliminate matters, larger batches can only do >= the BFS calls of
  // batch size 1 (redundant candidates are evaluated before the pruning
  // they would have received).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Csr g = make_erdos_renyi(250, 500, seed);
    const dist_t truth = apsp_diameter(g).diameter;
    FDiamOptions one, many;
    many.candidate_batch = 16;
    const DiameterResult a = fdiam_diameter(g, one);
    const DiameterResult b = fdiam_diameter(g, many);
    EXPECT_EQ(a.diameter, truth) << "seed " << seed;
    EXPECT_EQ(b.diameter, truth) << "seed " << seed;
    EXPECT_GE(b.stats.bfs_calls, a.stats.bfs_calls) << "seed " << seed;
  }
}

TEST(BatchedCandidates, WorksOnMeshesAndChains) {
  FDiamOptions opt;
  opt.candidate_batch = 8;
  EXPECT_EQ(fdiam_diameter(make_grid(25, 25), opt).diameter, 48);
  EXPECT_EQ(fdiam_diameter(make_caterpillar(30, 1), opt).diameter, 31);
  EXPECT_EQ(fdiam_diameter(disjoint_union(make_star(20), make_cycle(40)), opt)
                .diameter,
            20);
}

TEST(BatchedCandidates, RespectsBudget) {
  const Csr g = make_grid(80, 80);
  FDiamOptions opt;
  opt.candidate_batch = 4;
  opt.max_bfs_calls = 5;
  const DiameterResult r = fdiam_diameter(g, opt);
  EXPECT_TRUE(r.timed_out);
}


TEST(BoundCap, StaysExactForAnyValidCap) {
  // The experiment knob (cap_initial_bound) degrades the starting lower
  // bound; the final diameter must stay exact for every cap value.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Csr g = make_erdos_renyi(250, 550, seed);
    const dist_t truth = apsp_diameter(g).diameter;
    for (dist_t cap = 1; cap <= truth + 2; ++cap) {
      FDiamOptions opt;
      opt.cap_initial_bound = cap;
      EXPECT_EQ(fdiam_diameter(g, opt).diameter, truth)
          << "seed " << seed << " cap " << cap;
    }
  }
}

TEST(BoundCap, WeakerBoundsCostMoreTraversals) {
  const Csr g = make_grid(40, 40);  // diameter 78
  FDiamOptions full, weak;
  weak.cap_initial_bound = 20;
  const DiameterResult a = fdiam_diameter(g, full);
  const DiameterResult b = fdiam_diameter(g, weak);
  EXPECT_EQ(a.diameter, 78);
  EXPECT_EQ(b.diameter, 78);
  EXPECT_GT(b.stats.bfs_calls, a.stats.bfs_calls);
}

TEST(BoundCap, CapAboveMeasuredBoundIsANoop) {
  const Csr g = make_barabasi_albert(400, 3.0, 5);
  FDiamOptions capped;
  capped.cap_initial_bound = 10000;
  const DiameterResult a = fdiam_diameter(g);
  const DiameterResult b = fdiam_diameter(g, capped);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_EQ(a.stats.bfs_calls, b.stats.bfs_calls);
}

TEST(BoundCap, WitnessStillRealizesTheDiameter) {
  const Csr g = disjoint_union(make_grid(12, 12), make_cycle(30));
  FDiamOptions opt;
  opt.cap_initial_bound = 3;
  const DiameterResult r = fdiam_diameter(g, opt);
  EXPECT_EQ(r.diameter, 22);
  BfsEngine engine(g);
  EXPECT_EQ(engine.eccentricity(r.witness), 22);
}

}  // namespace
}  // namespace fdiam
