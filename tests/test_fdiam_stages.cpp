// Stage-level tests: Winnow, Chain Processing, Eliminate, the incremental
// extensions, and the ablation toggles (the configurations of Table 5 /
// Fig. 9) — all of which must leave the computed diameter exact.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

TEST(Winnow, RemovesMajorityOnSmallWorldGraphs) {
  // Paper Table 4: Winnow removes >70% of the vertices on every input and
  // >99% on most small-world graphs.
  const Csr g = make_barabasi_albert(20000, 5.0, 3);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_GT(r.stats.removed_by_winnow,
            static_cast<vid_t>(0.7 * g.num_vertices()));
}

TEST(Winnow, NeverRemovesAllDiametralVertices) {
  // Theorem 2 safety: at least one vertex whose eccentricity equals the
  // diameter must be evaluated (never only winnowed away).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Csr g = make_erdos_renyi(250, 650, seed);
    const dist_t truth = apsp_diameter(g).diameter;
    EXPECT_EQ(fdiam_diameter(g).diameter, truth) << "seed " << seed;
  }
}

TEST(Winnow, DisablingItStillGivesExactDiameter) {
  FDiamOptions opt;
  opt.use_winnow = false;
  const Csr g = make_barabasi_albert(1500, 3.0, 5);
  EXPECT_EQ(fdiam_diameter(g, opt).diameter, apsp_diameter(g).diameter);
}

TEST(Winnow, DisablingItCostsBfsCalls) {
  // Table 5: "no Winnow" inflates the number of BFS calls dramatically.
  const Csr g = make_barabasi_albert(8000, 4.0, 11);
  FDiamOptions base, no_winnow;
  no_winnow.use_winnow = false;
  const auto with = fdiam_diameter(g, base);
  const auto without = fdiam_diameter(g, no_winnow);
  EXPECT_EQ(with.diameter, without.diameter);
  EXPECT_GT(without.stats.bfs_calls, with.stats.bfs_calls);
}

TEST(Winnow, ExtensionTriggersWhenBoundGrows) {
  // A lollipop started from the clique hub underestimates the diameter
  // (2-sweep finds it exactly, so build a shape where the initial bound
  // must grow: two tails of very different lengths arranged so the
  // max-degree start is pulled toward the short side). We just assert the
  // general invariant instead on graphs where multiple bound updates are
  // common: random sparse graphs with low expansion.
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const Csr g = make_erdos_renyi(300, 450, seed);  // sparse, scraggly
    const DiameterResult r = fdiam_diameter(g);
    EXPECT_EQ(r.diameter, apsp_diameter(g).diameter) << "seed " << seed;
  }
}

TEST(Chain, CaterpillarUsesChains) {
  const Csr g = make_caterpillar(40, 2);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 41);
  EXPECT_GT(r.stats.removed_by_chain, 0u);
}

TEST(Chain, LongTailIsFollowedThroughDegree2Vertices) {
  // Lollipop: the tail is one long degree-2 chain ending in a degree-1
  // tip; chain processing should eliminate around the anchor.
  const Csr g = make_lollipop(30, 50);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 51);
}

TEST(Chain, PurePathIsChainOnly) {
  const Csr g = make_path(200);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 199);
  // Both endpoints are degree-1: chain processing covers the interior, so
  // very few eccentricity evaluations remain.
  EXPECT_LE(r.stats.ecc_computations, 6u);
}

TEST(Chain, DisablingItStillGivesExactDiameter) {
  FDiamOptions opt;
  opt.use_chain = false;
  for (const vid_t spine : {5u, 17u, 33u}) {
    const Csr g = make_caterpillar(spine, 2);
    EXPECT_EQ(fdiam_diameter(g, opt).diameter,
              apsp_diameter(g).diameter);
  }
}

TEST(Chain, TwoVertexComponentDoesNotCrash) {
  EdgeList e;
  e.add(0, 1);  // both endpoints degree 1
  e.add(2, 3);
  e.add(3, 4);
  const DiameterResult r = fdiam_diameter(Csr::from_edges(std::move(e)));
  EXPECT_EQ(r.diameter, 2);
  EXPECT_FALSE(r.connected);
}

TEST(Chain, StarOfChains) {
  // A "spider": hub with several long legs — every leg is a chain.
  EdgeList e;
  vid_t next = 1;
  for (int leg = 0; leg < 5; ++leg) {
    vid_t prev = 0;
    for (int i = 0; i < 20; ++i) {
      e.add(prev, next);
      prev = next++;
    }
  }
  const Csr g = Csr::from_edges(std::move(e));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 40);

  // All legs share the hub anchor: winnow (radius 20 around the hub)
  // already covers the whole spider, so chain attribution only shows up
  // with winnow disabled — and then one grouped elimination per anchor
  // must cover everything but the kept tip.
  FDiamOptions no_winnow;
  no_winnow.use_winnow = false;
  const DiameterResult r2 = fdiam_diameter(g, no_winnow);
  EXPECT_EQ(r2.diameter, 40);
  EXPECT_GT(r2.stats.removed_by_chain, 50u);
}

TEST(Stats, TimeOtherIsClampedAtZero) {
  // Regression: the stage timers round independently, so their sum can
  // exceed time_total by a hair; time_other() must clamp, not go negative.
  FDiamStats st;
  st.time_total = 1.0;
  st.time_init = 0.3;
  st.time_winnow = 0.3;
  st.time_chain = 0.2;
  st.time_eliminate = 0.2;
  st.time_ecc = 0.1;  // stage sum 1.1 > total
  EXPECT_EQ(st.time_other(), 0.0);

  // And on a real run the value is always non-negative.
  const DiameterResult r = fdiam_diameter(make_grid(40, 40));
  EXPECT_GE(r.stats.time_other(), 0.0);
}

TEST(Eliminate, DisablingItStillGivesExactDiameter) {
  FDiamOptions opt;
  opt.use_eliminate = false;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_erdos_renyi(250, 600, seed);
    EXPECT_EQ(fdiam_diameter(g, opt).diameter,
              apsp_diameter(g).diameter) << "seed " << seed;
  }
}

TEST(Eliminate, HelpsOnMeshes) {
  // Paper Fig. 9 / Table 5: disabling Eliminate explodes the BFS count on
  // meshes (2d grid, delaunay) where Winnow covers < 85%.
  const Csr g = make_grid(60, 60);
  FDiamOptions base, no_elim;
  no_elim.use_eliminate = false;
  const auto with = fdiam_diameter(g, base);
  const auto without = fdiam_diameter(g, no_elim);
  EXPECT_EQ(with.diameter, without.diameter);
  EXPECT_GT(without.stats.ecc_computations, with.stats.ecc_computations);
}

TEST(MaxDegreeStart, DisablingItStillGivesExactDiameter) {
  FDiamOptions opt;
  opt.start_policy = StartPolicy::kVertexZero;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_barabasi_albert(300, 2.0, seed);
    EXPECT_EQ(fdiam_diameter(g, opt).diameter,
              apsp_diameter(g).diameter) << "seed " << seed;
  }
}

TEST(FourSweepStart, ExtensionPolicyIsExact) {
  FDiamOptions opt;
  opt.start_policy = StartPolicy::kFourSweepCenter;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_erdos_renyi(300, 700, seed);
    const DiameterResult r = fdiam_diameter(g, opt);
    EXPECT_EQ(r.diameter, apsp_diameter(g).diameter) << "seed " << seed;
    EXPECT_GE(r.stats.ecc_computations, 6u);  // 4-sweep + 2-sweep
  }
  // Shapes where the center is far from the hub.
  EXPECT_EQ(fdiam_diameter(make_lollipop(20, 30), opt).diameter, 31);
  EXPECT_EQ(fdiam_diameter(make_grid(11, 17), opt).diameter, 26);
  EXPECT_EQ(fdiam_diameter(disjoint_union(make_path(9), make_cycle(14)), opt)
                .diameter,
            8);
}

class AblationConfigs
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, bool>> {};

TEST_P(AblationConfigs, EveryToggleCombinationIsExact) {
  // All 16 combinations of the four feature toggles must stay exact —
  // the optimizations are pure work-savers, never correctness trades.
  const auto [winnow, eliminate, chain, start_u] = GetParam();
  FDiamOptions opt;
  opt.use_winnow = winnow;
  opt.use_eliminate = eliminate;
  opt.use_chain = chain;
  opt.start_policy = start_u ? StartPolicy::kMaxDegree : StartPolicy::kVertexZero;
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const Csr g = make_erdos_renyi(150, 300, seed);
    EXPECT_EQ(fdiam_diameter(g, opt).diameter,
              apsp_diameter(g).diameter)
        << "seed " << seed;
  }
  // Also on a chain-heavy shape and a mesh.
  EXPECT_EQ(fdiam_diameter(make_caterpillar(12, 2), opt).diameter, 13);
  EXPECT_EQ(fdiam_diameter(make_grid(9, 14), opt).diameter, 21);
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, AblationConfigs,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace fdiam
