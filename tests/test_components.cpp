// Tests for connected-component labelling.

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/components.hpp"

namespace fdiam {
namespace {

TEST(Components, ConnectedGraphHasOneComponent) {
  const Csr g = make_grid(8, 8);
  const Components cc = connected_components(g);
  EXPECT_EQ(cc.count(), 1u);
  EXPECT_TRUE(cc.connected());
  EXPECT_EQ(cc.size[0], 64u);
}

TEST(Components, DisjointUnionHasTwo) {
  const Csr g = disjoint_union(make_path(10), make_cycle(6));
  const Components cc = connected_components(g);
  EXPECT_EQ(cc.count(), 2u);
  EXPECT_FALSE(cc.connected());
  EXPECT_EQ(cc.size[cc.largest()], 10u);
}

TEST(Components, IsolatedVerticesAreSingletons) {
  EdgeList e(5);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  const Components cc = connected_components(g);
  EXPECT_EQ(cc.count(), 4u);  // {0,1} plus three singletons
}

TEST(Components, LabelsAreConsistentWithEdges) {
  const Csr g = disjoint_union(make_star(5), make_complete(4));
  const Components cc = connected_components(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      EXPECT_EQ(cc.label[v], cc.label[w]);
    }
  }
}

TEST(Components, SizesSumToVertexCount) {
  const Csr g =
      disjoint_union(disjoint_union(make_path(7), make_cycle(9)),
                     make_star(3));
  const Components cc = connected_components(g);
  vid_t total = 0;
  for (const vid_t s : cc.size) total += s;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Components, EmptyGraph) {
  const Components cc = connected_components(Csr::from_edges(EdgeList{}));
  EXPECT_EQ(cc.count(), 0u);
  EXPECT_TRUE(cc.connected());
}

}  // namespace
}  // namespace fdiam
