// Tree-focused property tests: trees are the extreme chain-processing
// workload (every leaf starts a chain) and the theory is strongest there
// (2-sweep exact, diameter = sum of two deepest branch depths).

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "core/two_sweep.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"

namespace fdiam {
namespace {

TEST(RandomTree, IsATree) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Csr g = make_random_tree(500, seed);
    EXPECT_EQ(g.num_vertices(), 500u);
    EXPECT_EQ(g.num_edges(), 499u);  // n-1 edges
    EXPECT_TRUE(connected_components(g).connected());
    EXPECT_TRUE(g.validate());
  }
}

TEST(RandomTree, Deterministic) {
  const Csr a = make_random_tree(200, 7);
  const Csr b = make_random_tree(200, 7);
  EXPECT_TRUE(std::ranges::equal(a.raw_neighbors(), b.raw_neighbors()));
}

class TreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeSweep, FDiamMatchesApsp) {
  const Csr g = make_random_tree(400, GetParam());
  const BaselineResult truth = apsp_diameter(g);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, truth.diameter);
  EXPECT_TRUE(r.connected);
}

TEST_P(TreeSweep, TwoSweepIsExactOnTrees) {
  const Csr g = make_random_tree(300, GetParam() + 100);
  BfsEngine engine(g);
  const TwoSweepResult sweep = two_sweep(engine, g.max_degree_vertex());
  EXPECT_EQ(sweep.lower_bound, apsp_diameter(g).diameter);
}

TEST_P(TreeSweep, ChainProcessingDominatesLeafHeavyTrees) {
  // Random recursive trees are ~50% leaves; chain processing plus winnow
  // should leave only a handful of vertices for explicit evaluation.
  const Csr g = make_random_tree(2000, GetParam() + 200);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, apsp_diameter(g).diameter);
  EXPECT_LT(r.stats.evaluated, g.num_vertices() / 4);
}

TEST_P(TreeSweep, AllAblationsExactOnTrees) {
  const Csr g = make_random_tree(250, GetParam() + 300);
  const dist_t truth = apsp_diameter(g).diameter;
  for (const bool winnow : {false, true}) {
    for (const bool chain : {false, true}) {
      FDiamOptions opt;
      opt.use_winnow = winnow;
      opt.use_chain = chain;
      EXPECT_EQ(fdiam_diameter(g, opt).diameter, truth)
          << "winnow=" << winnow << " chain=" << chain;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(TreeStats, AboutHalfTheVerticesAreLeaves) {
  const GraphStats s = compute_stats(make_random_tree(5000, 3));
  EXPECT_GT(s.degree1, 2000u);
  EXPECT_LT(s.degree1, 3000u);
}

}  // namespace
}  // namespace fdiam
